//! Property-based tests for the discrete-event engine.

use faas_simcore::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popped timestamps are non-decreasing for arbitrary schedules.
    #[test]
    fn pop_order_is_monotone(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Every non-cancelled event is delivered exactly once.
    #[test]
    fn delivery_is_exactly_once(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.schedule(SimTime::from_micros(*t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if *cancel_mask.get(*i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(*i);
            }
        }
        let mut got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Ties at the same instant preserve insertion order.
    #[test]
    fn fifo_within_instant(n in 1usize..100) {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..n {
            q.schedule(t, i);
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    /// SimTime/SimDuration arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrip(base in 0u64..u32::MAX as u64, delta in 0u64..u32::MAX as u64) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).saturating_since(t), d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }
}
