//! # lambda-pricing
//!
//! The AWS-Lambda-style pay-per-millisecond cost model the paper uses for
//! every cost figure (Figs. 1, 20, 22, Table I, Fig. 23).
//!
//! AWS Lambda bills `GB-seconds` of *wall-clock* duration — not CPU time —
//! at a flat tariff, so a scheduler that stretches execution time (CFS
//! time-slicing) directly costs the user money (§I, Obs. 5). The billable
//! duration of an invocation is the paper's execution time:
//! `T_completion − T_firstrun`.
//!
//! ```
//! use faas_metrics::TaskRecord;
//! use faas_simcore::{SimDuration, SimTime};
//! use lambda_pricing::PriceModel;
//!
//! let model = PriceModel::duration_only();
//! let record = TaskRecord {
//!     arrival: SimTime::ZERO,
//!     first_run: SimTime::ZERO,
//!     completion: SimTime::from_secs(1),
//!     cpu_time: SimDuration::from_secs(1),
//!     preemptions: 0,
//!     mem_mib: 1_024,
//! };
//! // 1 GB for 1 second = one GB-second.
//! let usd = model.cost_of(&record);
//! assert!((usd - 1.66667e-5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faas_metrics::TaskRecord;
use faas_simcore::SimDuration;

/// The standard AWS Lambda memory tiers the cost sweeps use (Figs. 1/20/22
/// plot cost as if all functions had the same size).
pub const SWEEP_TIERS_MIB: [u32; 7] = [128, 256, 512, 1_024, 2_048, 4_096, 10_240];

/// A pay-per-duration tariff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceModel {
    /// USD per GB-second of billed duration.
    pub usd_per_gb_second: f64,
    /// USD per request (AWS charges $0.20 per million).
    pub usd_per_request: f64,
    /// Billing granularity; durations are rounded *up* to a multiple.
    pub granularity: SimDuration,
}

impl PriceModel {
    /// The public AWS Lambda x86 tariff as of 2024: $0.0000166667 per
    /// GB-second, $0.20 per million requests, 1 ms granularity.
    pub fn aws_lambda_2024() -> Self {
        PriceModel {
            usd_per_gb_second: 1.66667e-5,
            usd_per_request: 0.2e-6,
            granularity: SimDuration::from_millis(1),
        }
    }

    /// A tariff without the per-request component (duration-only analyses,
    /// matching the paper's "multiplying the total execution time … by the
    /// cost per millisecond").
    pub fn duration_only() -> Self {
        PriceModel {
            usd_per_request: 0.0,
            ..PriceModel::aws_lambda_2024()
        }
    }

    /// The per-millisecond price of one invocation at `mem_mib`.
    pub fn usd_per_ms(&self, mem_mib: u32) -> f64 {
        self.usd_per_gb_second * (mem_mib as f64 / 1_024.0) / 1_000.0
    }

    /// Billable duration: rounded up to the granularity.
    pub fn billable(&self, duration: SimDuration) -> SimDuration {
        let g = self.granularity.as_micros();
        if g == 0 {
            return duration;
        }
        let d = duration.as_micros();
        SimDuration::from_micros(d.div_ceil(g) * g)
    }

    /// Cost in USD of one invocation, using its own memory size and the
    /// paper's billable duration (execution time).
    pub fn cost_of(&self, record: &TaskRecord) -> f64 {
        self.cost_of_duration(record.execution_time(), record.mem_mib)
    }

    /// Cost in USD of a `duration` at `mem_mib`.
    pub fn cost_of_duration(&self, duration: SimDuration, mem_mib: u32) -> f64 {
        self.billable(duration).as_millis_f64() * self.usd_per_ms(mem_mib) + self.usd_per_request
    }

    /// Total workload cost, each invocation billed at its own memory size —
    /// Table I's "overall cost … according to the memory size distribution
    /// of the Azure traces".
    pub fn workload_cost(&self, records: &[TaskRecord]) -> f64 {
        records.iter().map(|r| self.cost_of(r)).sum()
    }

    /// Total cost of a whole fleet: per-machine record sets summed in
    /// machine order (billing is additive, so this equals the cost of the
    /// merged workload) — the `$`-axis of the cluster dispatch-policy
    /// comparisons.
    pub fn cluster_workload_cost(&self, per_machine: &[Vec<TaskRecord>]) -> f64 {
        per_machine.iter().map(|r| self.workload_cost(r)).sum()
    }

    /// Total workload cost as if every function had `mem_mib` — one bar of
    /// the Fig. 1/20/22 sweeps.
    pub fn workload_cost_at(&self, records: &[TaskRecord], mem_mib: u32) -> f64 {
        records
            .iter()
            .map(|r| self.cost_of_duration(r.execution_time(), mem_mib))
            .sum()
    }

    /// The full memory sweep: `(mem_mib, usd)` per tier — the series behind
    /// Figs. 1, 20 and 22.
    pub fn memory_sweep(&self, records: &[TaskRecord]) -> Vec<(u32, f64)> {
        SWEEP_TIERS_MIB
            .iter()
            .map(|&tier| (tier, self.workload_cost_at(records, tier)))
            .collect()
    }
}

/// Online cost accumulator for streaming runs: bills records one at a
/// time as they retire instead of pricing a materialized record vector.
///
/// The running total is a plain left-to-right `f64` sum — the *same* fold
/// [`PriceModel::workload_cost`] performs — so a streaming run that
/// retires records in record order produces a bitwise-identical total to
/// the materializing path (pinned by the cluster differential suite).
#[derive(Debug, Clone, PartialEq)]
pub struct CostAccumulator {
    model: PriceModel,
    total_usd: f64,
    count: u64,
}

impl CostAccumulator {
    /// An empty accumulator billing under `model`.
    pub fn new(model: PriceModel) -> Self {
        CostAccumulator {
            model,
            total_usd: 0.0,
            count: 0,
        }
    }

    /// Bills one finished invocation.
    pub fn record(&mut self, record: &TaskRecord) {
        self.total_usd += self.model.cost_of(record);
        self.count += 1;
    }

    /// Running total in USD.
    pub fn total_usd(&self) -> f64 {
        self.total_usd
    }

    /// Number of invocations billed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The tariff this accumulator bills under.
    pub fn model(&self) -> &PriceModel {
        &self.model
    }
}

/// Online accumulator for the revenue *lost* to overload shedding: each
/// shed invocation is billed as if it had run to completion (billable
/// execution duration at its own memory size), because that is exactly
/// the bill the provider forfeits by refusing it.
///
/// Shed work never produces a [`TaskRecord`] — the router refuses it
/// before any machine sees it — so this accumulator takes the would-have-
/// been duration (`work + io_wait`) straight from the spec. Like
/// [`CostAccumulator`], the total is a left-to-right `f64` fold in the
/// order the sheds happened (arrival order at a serial front end), so it
/// is byte-identical at any fan width or trace chunking.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedCostAccumulator {
    model: PriceModel,
    total_usd: f64,
    count: u64,
}

impl ShedCostAccumulator {
    /// An empty accumulator pricing forfeited work under `model`.
    pub fn new(model: PriceModel) -> Self {
        ShedCostAccumulator {
            model,
            total_usd: 0.0,
            count: 0,
        }
    }

    /// Prices one shed invocation that would have occupied the platform
    /// for `duration` (CPU work + billed I/O wait) at `mem_mib`.
    pub fn record(&mut self, duration: SimDuration, mem_mib: u32) {
        self.total_usd += self.model.cost_of_duration(duration, mem_mib);
        self.count += 1;
    }

    /// Running total of forfeited revenue in USD.
    pub fn total_usd(&self) -> f64 {
        self.total_usd
    }

    /// Number of sheds priced.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The tariff this accumulator prices under.
    pub fn model(&self) -> &PriceModel {
        &self.model
    }
}

/// Online accumulator for the dollar cost of churn under chaos: work
/// wasted on crash-doomed dispatch attempts (the attempt ran — and is
/// re-billed on retry — but produced nothing) and the forfeited value
/// of invocations abandoned after exhausting their retry budget.
///
/// Neither leaves a [`TaskRecord`]: a doomed attempt dies with its
/// machine and an abandoned invocation never reaches one again, so both
/// are priced straight from the spec's would-have-been duration, like
/// [`ShedCostAccumulator`]. The total is a left-to-right `f64` fold in
/// the order the front end charged them, so it is byte-identical at any
/// fan width or trace chunking.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnCostAccumulator {
    model: PriceModel,
    retry_usd: f64,
    abandoned_usd: f64,
    retries: u64,
    abandoned: u64,
}

impl ChurnCostAccumulator {
    /// An empty accumulator pricing churn under `model`.
    pub fn new(model: PriceModel) -> Self {
        ChurnCostAccumulator {
            model,
            retry_usd: 0.0,
            abandoned_usd: 0.0,
            retries: 0,
            abandoned: 0,
        }
    }

    /// Prices one crash-doomed attempt that occupied its machine for
    /// `duration` (CPU work + billed I/O wait) at `mem_mib` before the
    /// crash threw the work away.
    pub fn record_retry(&mut self, duration: SimDuration, mem_mib: u32) {
        self.retry_usd += self.model.cost_of_duration(duration, mem_mib);
        self.retries += 1;
    }

    /// Prices one invocation abandoned after its retry budget ran out —
    /// the revenue its completed run would have produced.
    pub fn record_abandoned(&mut self, duration: SimDuration, mem_mib: u32) {
        self.abandoned_usd += self.model.cost_of_duration(duration, mem_mib);
        self.abandoned += 1;
    }

    /// Running total of churn in USD (wasted attempts + abandonments).
    pub fn total_usd(&self) -> f64 {
        self.retry_usd + self.abandoned_usd
    }

    /// USD wasted on crash-doomed attempts alone.
    pub fn retry_usd(&self) -> f64 {
        self.retry_usd
    }

    /// USD forfeited on abandoned invocations alone.
    pub fn abandoned_usd(&self) -> f64 {
        self.abandoned_usd
    }

    /// Number of doomed attempts priced.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Number of abandonments priced.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// The tariff this accumulator prices under.
    pub fn model(&self) -> &PriceModel {
        &self.model
    }
}

/// Online accumulator for the dollar cost of **hedged requests**: the
/// losing side of every speculative double-booking the health layer
/// makes. The loser's attempt really occupied its machine until the
/// kernel cancelled it at the winner's estimated completion, but a
/// cancelled task leaves no [`TaskRecord`] and is never billed by
/// [`CostAccumulator`] — this ledger prices that wasted occupancy from
/// the spec's would-have-been duration, like [`ShedCostAccumulator`].
/// The total is a left-to-right `f64` fold in the order the front end
/// hedged, so it is byte-identical at any fan width or trace chunking.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeCostAccumulator {
    model: PriceModel,
    total_usd: f64,
    count: u64,
}

impl HedgeCostAccumulator {
    /// An empty accumulator pricing hedge waste under `model`.
    pub fn new(model: PriceModel) -> Self {
        HedgeCostAccumulator {
            model,
            total_usd: 0.0,
            count: 0,
        }
    }

    /// Prices one losing hedge attempt that would have occupied its
    /// machine for `duration` (CPU work + billed I/O wait) at `mem_mib`.
    pub fn record(&mut self, duration: SimDuration, mem_mib: u32) {
        self.total_usd += self.model.cost_of_duration(duration, mem_mib);
        self.count += 1;
    }

    /// Running total of hedge waste in USD.
    pub fn total_usd(&self) -> f64 {
        self.total_usd
    }

    /// Number of losing attempts priced.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The tariff this accumulator prices under.
    pub fn model(&self) -> &PriceModel {
        &self.model
    }
}

/// The relative extra cost of `more` over `less` (e.g. "CFS introduces
/// more than 10 times extra cost compared to FIFO", Fig. 1).
///
/// # Panics
///
/// Panics if `less` is not positive.
pub fn cost_ratio(more: f64, less: f64) -> f64 {
    assert!(less > 0.0, "baseline cost must be positive");
    more / less
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::SimTime;

    fn record(exec_ms: u64, mem_mib: u32) -> TaskRecord {
        TaskRecord {
            arrival: SimTime::ZERO,
            first_run: SimTime::ZERO,
            completion: SimTime::from_millis(exec_ms),
            cpu_time: SimDuration::from_millis(exec_ms),
            preemptions: 0,
            mem_mib,
        }
    }

    #[test]
    fn gb_second_reference_point() {
        let m = PriceModel::duration_only();
        // 1 GB × 1 s = $0.0000166667.
        let usd = m.cost_of(&record(1_000, 1_024));
        assert!((usd - 1.66667e-5).abs() < 1e-12);
        // Half the memory, half the price.
        let usd_half = m.cost_of(&record(1_000, 512));
        assert!((usd_half * 2.0 - usd).abs() < 1e-12);
    }

    #[test]
    fn per_request_component() {
        let m = PriceModel::aws_lambda_2024();
        let with = m.cost_of(&record(1, 128));
        let without = PriceModel::duration_only().cost_of(&record(1, 128));
        assert!((with - without - 0.2e-6).abs() < 1e-15);
    }

    #[test]
    fn billing_rounds_up_to_granularity() {
        let m = PriceModel::aws_lambda_2024();
        assert_eq!(
            m.billable(SimDuration::from_micros(1)),
            SimDuration::from_millis(1)
        );
        assert_eq!(
            m.billable(SimDuration::from_micros(1_001)),
            SimDuration::from_millis(2)
        );
        assert_eq!(
            m.billable(SimDuration::from_millis(5)),
            SimDuration::from_millis(5)
        );
        assert_eq!(m.billable(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn billed_on_wall_clock_not_cpu() {
        // A task that waited while "executing" (CFS stretching) pays for
        // the waiting — the paper's central point.
        let m = PriceModel::duration_only();
        let stretched = TaskRecord {
            completion: SimTime::from_secs(10),
            cpu_time: SimDuration::from_millis(100),
            ..record(0, 1_024)
        };
        let compact = record(100, 1_024);
        assert!(m.cost_of(&stretched) > 99.0 * m.cost_of(&compact));
    }

    #[test]
    fn workload_cost_sums() {
        let m = PriceModel::duration_only();
        let records = vec![record(100, 128), record(200, 256)];
        let total = m.workload_cost(&records);
        assert!((total - (m.cost_of(&records[0]) + m.cost_of(&records[1]))).abs() < 1e-15);
    }

    #[test]
    fn cluster_cost_equals_merged_cost() {
        let m = PriceModel::duration_only();
        let shards = vec![
            vec![record(100, 128), record(200, 256)],
            vec![],
            vec![record(50, 1_024)],
        ];
        let merged: Vec<TaskRecord> = shards.iter().flatten().copied().collect();
        assert!((m.cluster_workload_cost(&shards) - m.workload_cost(&merged)).abs() < 1e-15);
    }

    #[test]
    fn memory_sweep_scales_linearly() {
        let m = PriceModel::duration_only();
        let records = vec![record(1_000, 128); 10];
        let sweep = m.memory_sweep(&records);
        assert_eq!(sweep.len(), SWEEP_TIERS_MIB.len());
        let at_128 = sweep[0].1;
        let at_1024 = sweep.iter().find(|(t, _)| *t == 1_024).unwrap().1;
        assert!(
            (at_1024 / at_128 - 8.0).abs() < 1e-9,
            "price scales with memory"
        );
    }

    #[test]
    fn accumulator_matches_workload_cost_bitwise() {
        // Same records, same order: the streaming fold must equal the
        // materializing fold down to the last bit (f64 addition is
        // order-sensitive, and both paths add left to right).
        let m = PriceModel::aws_lambda_2024();
        let records: Vec<TaskRecord> = (1..=1_000)
            .map(|i| record(i % 97 + 1, [128, 256, 1_024][i as usize % 3]))
            .collect();
        let mut acc = CostAccumulator::new(m);
        for r in &records {
            acc.record(r);
        }
        assert_eq!(
            acc.total_usd().to_bits(),
            m.workload_cost(&records).to_bits()
        );
        assert_eq!(acc.count(), 1_000);
        assert_eq!(acc.model(), &m);
    }

    #[test]
    fn shed_accumulator_prices_forfeited_duration() {
        // A shed invocation costs exactly what the same duration would
        // have billed had it run — same tariff, same rounding.
        let m = PriceModel::aws_lambda_2024();
        let mut shed = ShedCostAccumulator::new(m);
        shed.record(SimDuration::from_millis(100), 128);
        shed.record(SimDuration::from_millis(250), 1_024);
        let ran = m.cost_of_duration(SimDuration::from_millis(100), 128)
            + m.cost_of_duration(SimDuration::from_millis(250), 1_024);
        assert_eq!(shed.total_usd().to_bits(), ran.to_bits());
        assert_eq!(shed.count(), 2);
        assert_eq!(shed.model(), &m);
    }

    #[test]
    fn churn_accumulator_keeps_retry_and_abandon_ledgers_apart() {
        let m = PriceModel::duration_only();
        let mut churn = ChurnCostAccumulator::new(m);
        churn.record_retry(SimDuration::from_millis(100), 128);
        churn.record_retry(SimDuration::from_millis(100), 128);
        churn.record_abandoned(SimDuration::from_millis(400), 256);
        let retry = 2.0 * m.cost_of_duration(SimDuration::from_millis(100), 128);
        let gone = m.cost_of_duration(SimDuration::from_millis(400), 256);
        assert_eq!(churn.retries(), 2);
        assert_eq!(churn.abandoned(), 1);
        assert_eq!(churn.retry_usd().to_bits(), retry.to_bits());
        assert_eq!(churn.abandoned_usd().to_bits(), gone.to_bits());
        assert_eq!(churn.total_usd().to_bits(), (retry + gone).to_bits());
        assert_eq!(churn.model(), &m);
    }

    #[test]
    fn hedge_accumulator_prices_losing_attempts_bitwise() {
        // A losing hedge costs exactly what the same duration would have
        // billed had it completed — same tariff, same rounding, same
        // left-to-right fold order.
        let m = PriceModel::aws_lambda_2024();
        let mut hedge = HedgeCostAccumulator::new(m);
        hedge.record(SimDuration::from_millis(100), 128);
        hedge.record(SimDuration::from_millis(250), 1_024);
        let ran = m.cost_of_duration(SimDuration::from_millis(100), 128)
            + m.cost_of_duration(SimDuration::from_millis(250), 1_024);
        assert_eq!(hedge.total_usd().to_bits(), ran.to_bits());
        assert_eq!(hedge.count(), 2);
        assert_eq!(hedge.model(), &m);
    }

    #[test]
    fn cost_ratio_basics() {
        assert!((cost_ratio(10.0, 1.0) - 10.0).abs() < 1e-12);
        assert!((cost_ratio(1.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_baseline_rejected() {
        let _ = cost_ratio(1.0, 0.0);
    }
}
