//! Simulated CPU cores.

use faas_simcore::{SimDuration, SimTime};

use crate::task::TaskId;

/// Stable identifier of a CPU core within one [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub(crate) u16);

impl CoreId {
    /// The numeric index of this core (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a core id from an index.
    ///
    /// Only meaningful for indices below the machine's core count; the
    /// machine validates ids at use sites.
    pub fn from_index(index: usize) -> Self {
        CoreId(index as u16)
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// What a core is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Nothing scheduled.
    Idle,
    /// Running the given task.
    Running(TaskId),
    /// Occupied by the host OS (native-kernel interference, §VI-D /
    /// Table I discussion); no enclave task can run.
    Interference,
}

/// Internal per-core bookkeeping.
#[derive(Debug)]
pub(crate) struct Core {
    pub(crate) state: CoreState,
    /// Invalidates in-flight completion/slice events after preemption.
    pub(crate) generation: u64,
    /// When the current occupancy (dispatch or interference) began.
    pub(crate) busy_since: Option<SimTime>,
    /// When the current task starts making real progress (after the
    /// context-switch direct cost).
    pub(crate) work_start: SimTime,
    /// Preemptions suffered on this core (slice expiry + explicit + interference).
    pub(crate) preemptions: u64,
    /// Context switches performed on this core.
    pub(crate) ctx_switches: u64,
    /// Task that most recently ran on this core (for free re-dispatch).
    pub(crate) last_task: Option<TaskId>,
}

impl Core {
    pub(crate) fn new() -> Self {
        Core {
            state: CoreState::Idle,
            generation: 0,
            busy_since: None,
            work_start: SimTime::ZERO,
            preemptions: 0,
            ctx_switches: 0,
            last_task: None,
        }
    }
}

/// Aggregated per-core statistics exposed after (or during) a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Number of preemptions suffered on this core.
    pub preemptions: u64,
    /// Number of context switches performed on this core.
    pub ctx_switches: u64,
    /// Total busy time (task work + switch overhead + interference).
    pub busy: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        let id = CoreId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "C5");
    }

    #[test]
    fn fresh_core_is_idle() {
        let c = Core::new();
        assert_eq!(c.state, CoreState::Idle);
        assert_eq!(c.generation, 0);
        assert_eq!(c.preemptions, 0);
    }
}
