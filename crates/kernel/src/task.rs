//! Task model: the unit the scheduler places on cores.
//!
//! A task models one serverless function invocation (or one microVM thread
//! in the Firecracker experiments): a CPU-bound computation needing a known
//! amount of on-CPU work. The kernel tracks its lifecycle and the
//! bookkeeping the paper's metrics (§II-B) are computed from: arrival,
//! first run, completion and preemption count.

use faas_simcore::{SimDuration, SimTime};

/// Stable identifier of a task within one [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// The numeric index of this task (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a task id from an index.
    ///
    /// Only meaningful for indices below the machine's task count; the
    /// machine validates ids at use sites.
    pub fn from_index(index: usize) -> Self {
        TaskId(index as u32)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A platform-provided placement hint (the paper's §VII-4 future work:
/// scheduling a microVM's internal threads under different policies).
///
/// FaaS platforms know more than the kernel: historic durations, and
/// which threads are latency-critical (the vCPU running user code) versus
/// background (VMM/I-O). Hint-aware policies such as the hybrid scheduler
/// may honor these; hint-oblivious policies ignore them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementHint {
    /// No hint: treat like any other task.
    #[default]
    Auto,
    /// Latency-insensitive background work (e.g. microVM VMM/I-O threads):
    /// may bypass the latency-optimized path.
    Background,
}

/// Immutable description of a task handed to the simulation up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Instant the invocation arrives at the platform.
    pub arrival: SimTime,
    /// Total on-CPU work the task needs to complete (uninterrupted).
    pub work: SimDuration,
    /// Memory allocated to the function, in MiB (drives pricing).
    pub mem_mib: u32,
    /// Optional duration hint (e.g. historical average) used by
    /// deadline-based policies such as EDF. `None` for hint-free policies.
    pub expected: Option<SimDuration>,
    /// Free-form grouping tag; the Firecracker model uses it to link the
    /// threads of one microVM. `0` for plain function processes.
    pub group: u64,
    /// Platform placement hint (see [`PlacementHint`]).
    pub hint: PlacementHint,
    /// Off-CPU wait after the CPU work completes (an external call — DB,
    /// storage, HTTP). The core is released but the function has not
    /// returned, so the wait is **billed**: this models the paper's §I
    /// example where 1 ms of CPU plus a 1-minute database wait is billed
    /// as the full minute.
    pub io_wait: SimDuration,
    /// Absolute instant past which the caller abandons the invocation
    /// (request timeout). The kernel cancels the task at this instant —
    /// running or blocked tasks are killed on the spot, queued tasks the
    /// moment a policy dispatches them — so callers stop paying for work
    /// past the deadline. `None` (the default) disables cancellation and
    /// leaves the kernel event stream byte-identical to a deadline-free
    /// run.
    pub deadline: Option<SimTime>,
}

impl TaskSpec {
    /// A convenience constructor for a plain function invocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use faas_kernel::TaskSpec;
    /// use faas_simcore::{SimDuration, SimTime};
    ///
    /// let spec = TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(150), 128);
    /// assert_eq!(spec.mem_mib, 128);
    /// assert_eq!(spec.group, 0);
    /// ```
    pub fn function(arrival: SimTime, work: SimDuration, mem_mib: u32) -> Self {
        TaskSpec {
            arrival,
            work,
            mem_mib,
            expected: None,
            group: 0,
            hint: PlacementHint::Auto,
            io_wait: SimDuration::ZERO,
            deadline: None,
        }
    }

    /// Sets the duration hint used by deadline-based policies.
    pub fn with_expected(mut self, expected: SimDuration) -> Self {
        self.expected = Some(expected);
        self
    }

    /// Sets the grouping tag (e.g. a microVM id).
    pub fn with_group(mut self, group: u64) -> Self {
        self.group = group;
        self
    }

    /// Sets the placement hint.
    pub fn with_hint(mut self, hint: PlacementHint) -> Self {
        self.hint = hint;
        self
    }

    /// Sets the trailing off-CPU wait (external call).
    pub fn with_io_wait(mut self, io_wait: SimDuration) -> Self {
        self.io_wait = io_wait;
        self
    }

    /// Sets the absolute abandonment deadline (request timeout).
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Arrived but never run; waiting for the policy to place it.
    Queued,
    /// Currently occupying a core.
    Running,
    /// Ran at least once and was preempted; waiting to be placed again.
    Preempted,
    /// CPU work done; waiting off-CPU for an external call to return.
    /// Billed but not schedulable.
    Blocked,
    /// All work done.
    Finished,
    /// Abandoned past its [`TaskSpec::deadline`]: the caller timed out and
    /// stopped paying. Terminal like `Finished`, but with no completion
    /// instant — cancelled tasks produce no billing record.
    Cancelled,
}

/// Kernel-side record of one task (spec + mutable lifecycle bookkeeping).
#[derive(Debug, Clone)]
pub struct Task {
    pub(crate) spec: TaskSpec,
    pub(crate) state: TaskState,
    pub(crate) remaining: SimDuration,
    pub(crate) first_run: Option<SimTime>,
    pub(crate) completion: Option<SimTime>,
    pub(crate) preemptions: u32,
    /// Total time actually spent on a CPU (excludes queueing).
    pub(crate) cpu_time: SimDuration,
    /// The core this task currently occupies (`Some` iff `Running`); the
    /// back-pointer that makes `Machine::observed_runtime` O(1).
    pub(crate) on_core: Option<crate::core::CoreId>,
}

impl Task {
    pub(crate) fn new(spec: TaskSpec) -> Self {
        let remaining = spec.work;
        Task {
            spec,
            state: TaskState::Queued,
            remaining,
            first_run: None,
            completion: None,
            preemptions: 0,
            cpu_time: SimDuration::ZERO,
            on_core: None,
        }
    }

    /// The core this task currently occupies, if it is `Running`.
    pub fn running_core(&self) -> Option<crate::core::CoreId> {
        self.on_core
    }

    /// The immutable spec this task was created from.
    pub fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Whether the task was abandoned past its deadline (terminal, but
    /// unbilled — the caller stopped paying).
    pub fn is_cancelled(&self) -> bool {
        self.state == TaskState::Cancelled
    }

    /// Work still to be done (inflated by cache-warmup penalties after
    /// preemptions; see [`CostModel`](crate::CostModel)).
    pub fn remaining(&self) -> SimDuration {
        self.remaining
    }

    /// Instant of first dispatch, if the task has ever run.
    pub fn first_run(&self) -> Option<SimTime> {
        self.first_run
    }

    /// Completion instant, if finished.
    pub fn completion(&self) -> Option<SimTime> {
        self.completion
    }

    /// How many times the task was preempted (slice expiry, explicit
    /// preemption or host-OS interference).
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// Accumulated on-CPU time so far.
    pub fn cpu_time(&self) -> SimDuration {
        self.cpu_time
    }

    /// Execution time per the paper's §II-B: completion − first run.
    /// `None` until the task finishes.
    pub fn execution_time(&self) -> Option<SimDuration> {
        Some(self.completion? - self.first_run?)
    }

    /// Response time per §II-B: first run − arrival.
    pub fn response_time(&self) -> Option<SimDuration> {
        Some(self.first_run? - self.spec.arrival)
    }

    /// Turnaround time per §II-B: completion − arrival.
    pub fn turnaround_time(&self) -> Option<SimDuration> {
        Some(self.completion? - self.spec.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec::function(SimTime::from_millis(10), SimDuration::from_millis(100), 256)
    }

    #[test]
    fn new_task_is_queued_with_full_work() {
        let t = Task::new(spec());
        assert_eq!(t.state(), TaskState::Queued);
        assert_eq!(t.remaining(), SimDuration::from_millis(100));
        assert_eq!(t.preemptions(), 0);
        assert_eq!(t.execution_time(), None);
        assert_eq!(t.response_time(), None);
    }

    #[test]
    fn metrics_match_paper_equations() {
        let mut t = Task::new(spec());
        t.first_run = Some(SimTime::from_millis(40));
        t.completion = Some(SimTime::from_millis(190));
        // T_response = T_firstrun - T_arrival
        assert_eq!(t.response_time(), Some(SimDuration::from_millis(30)));
        // T_execution = T_completion - T_firstrun
        assert_eq!(t.execution_time(), Some(SimDuration::from_millis(150)));
        // T_turnaround = T_completion - T_arrival
        assert_eq!(t.turnaround_time(), Some(SimDuration::from_millis(180)));
    }

    #[test]
    fn builder_helpers() {
        let s = spec()
            .with_expected(SimDuration::from_millis(90))
            .with_group(7)
            .with_hint(PlacementHint::Background);
        assert_eq!(s.expected, Some(SimDuration::from_millis(90)));
        assert_eq!(s.group, 7);
        assert_eq!(s.hint, PlacementHint::Background);
        assert_eq!(spec().hint, PlacementHint::Auto, "default hint is Auto");
    }

    #[test]
    fn task_id_display_and_index() {
        let id = TaskId(3);
        assert_eq!(id.to_string(), "T3");
        assert_eq!(id.index(), 3);
    }
}
