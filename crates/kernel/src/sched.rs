//! The user-space scheduling agent interface and the simulation driver.
//!
//! [`Scheduler`] is the simulated equivalent of a ghOSt user-space agent:
//! the kernel delivers messages (task arrival, slice expiry, …) and the
//! agent reacts by invoking the scheduling verbs on the [`Machine`].
//! [`MachineRun`] is the reusable per-machine driver — it binds one
//! machine to one agent and owns the event loop plus the batched idle
//! sweep. [`Simulation`] is the trivial single-machine case (a thin
//! wrapper over one `MachineRun`); the cluster layer drives many
//! `MachineRun`s side by side.

use std::borrow::Cow;

use faas_simcore::{SimDuration, SimTime};

use crate::core::{CoreId, CoreState, CoreStats};
use crate::machine::{Machine, MachineConfig, PolicyCall, SimError};
use crate::message::KernelMessage;
use crate::task::{Task, TaskId, TaskSpec};

/// A user-space scheduling policy (ghOSt agent).
///
/// The driver guarantees:
///
/// * every callback runs with exclusive access to the [`Machine`];
/// * after every kernel event that delivers a policy callback,
///   [`Scheduler::on_core_idle`] is invoked once for each core that is
///   idle at that point (in core-id order), so a policy only needs to
///   react locally;
/// * the sweep is skipped only when it provably cannot matter: after a
///   kernel-internal event (no callback ran) when additionally no core
///   became idle since the last sweep and that sweep made no offer at
///   all — so the policy's decision inputs are exactly those it already
///   declined under;
/// * a task handed over in `on_slice_expired` / `on_interference_preempt`
///   is in the `Preempted` state and is *owned by the policy* until it is
///   dispatched again — the kernel will never move it.
pub trait Scheduler {
    /// Human-readable policy name (used in reports and figures).
    fn name(&self) -> &str;

    /// If `Some`, the kernel delivers [`Scheduler::on_tick`] periodically.
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }

    /// A new task arrived (`MSG_TASK_NEW`).
    fn on_task_new(&mut self, m: &mut Machine, task: TaskId);

    /// A task's dispatch slice expired; the task is now `Preempted`.
    fn on_slice_expired(&mut self, m: &mut Machine, task: TaskId, core: CoreId);

    /// A core has nothing to run. Dispatch here if work is queued.
    fn on_core_idle(&mut self, m: &mut Machine, core: CoreId);

    /// A task finished (`MSG_TASK_DEAD`). Default: no-op.
    fn on_task_finished(&mut self, m: &mut Machine, task: TaskId, core: CoreId) {
        let _ = (m, task, core);
    }

    /// The host OS kicked a task off a core. Default: treat it like a
    /// slice expiry (re-queue per policy rules).
    fn on_interference_preempt(&mut self, m: &mut Machine, task: TaskId, core: CoreId) {
        self.on_slice_expired(m, task, core);
    }

    /// Periodic tick (armed via [`Scheduler::tick_interval`]). Default: no-op.
    fn on_tick(&mut self, m: &mut Machine) {
        let _ = m;
    }
}

/// Outcome of a completed simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Policy name the run used.
    pub policy: String,
    /// Final task records (same order as the input specs).
    pub tasks: Vec<Task>,
    /// Per-core statistics.
    pub core_stats: Vec<CoreStats>,
    /// Virtual instant the last task finished.
    pub finished_at: SimTime,
    /// The machine in its final state (utilization ledger, message log).
    pub machine: Machine,
}

impl SimReport {
    /// Total CPU time consumed by all tasks (excludes switch overhead).
    pub fn total_cpu_time(&self) -> SimDuration {
        self.tasks.iter().map(Task::cpu_time).sum()
    }

    /// Total preemptions across all cores.
    pub fn total_preemptions(&self) -> u64 {
        self.core_stats.iter().map(|s| s.preemptions).sum()
    }
}

/// A memory-lean run outcome: everything a sweep or a cluster merge needs
/// (task records, core stats, the message log when enabled) **without**
/// the [`Machine`] itself — the event-queue arena, arrival calendar and
/// utilization ledger are dropped at the end of the run. Big fans (one
/// report per case or per cluster machine held concurrently) use this to
/// keep peak memory proportional to the task count alone; timelines that
/// need the utilization ledger keep using [`SimReport`].
#[derive(Debug)]
pub struct SlimReport {
    /// Policy name the run used.
    pub policy: String,
    /// Final task records (same order as the input specs).
    pub tasks: Vec<Task>,
    /// Per-core statistics.
    pub core_stats: Vec<CoreStats>,
    /// Virtual instant the last task finished.
    pub finished_at: SimTime,
    /// Kernel events processed (stale generations included) — the
    /// throughput denominator the bench harness uses, carried here
    /// because the machine that counted them is gone.
    pub events_processed: u64,
    /// The kernel→agent message stream — empty unless
    /// [`MachineConfig::log_messages`] was set. Carried here (it is one
    /// empty `Vec` in the common case) so differential tests can compare
    /// whole kernel streams without holding machines alive.
    pub messages: Vec<(SimTime, KernelMessage)>,
    /// Peak in-flight backlog (see [`Machine::max_in_flight`]) — the
    /// quantity overload middleware bounds.
    pub max_in_flight: u64,
    /// Tasks cancelled past their deadline (see [`Machine::num_cancelled`]).
    pub cancelled: u64,
}

impl SlimReport {
    /// Total CPU time consumed by all tasks (excludes switch overhead).
    pub fn total_cpu_time(&self) -> SimDuration {
        self.tasks.iter().map(Task::cpu_time).sum()
    }

    /// Total preemptions across all cores.
    pub fn total_preemptions(&self) -> u64 {
        self.core_stats.iter().map(|s| s.preemptions).sum()
    }
}

/// The reusable per-machine driver: one [`Machine`] bound to one
/// [`Scheduler`], plus the sweep state of the event loop.
///
/// This is the unit the cluster layer replicates — M machines of a fleet
/// are M independent `MachineRun`s (after front-end dispatch has split
/// the arrival stream), each advanced to completion with [`step`].
/// [`Simulation`] is the 1-machine convenience wrapper.
///
/// [`step`]: MachineRun::step
pub struct MachineRun<P> {
    machine: Machine,
    policy: P,
    /// Reusable scratch for the idle sweep (no per-event allocation).
    sweep_buf: Vec<CoreId>,
    /// Per-core stamp of the last step a core was offered to the policy,
    /// bounding each core to one `on_core_idle` call per event.
    swept_at: Vec<u64>,
    step: u64,
    /// [`Machine::idle_transitions`] at the end of the previous sweep; an
    /// unchanged counter means no core became idle since.
    swept_transitions: u64,
    /// Whether the previous sweep invoked `on_core_idle` at all. An offer
    /// may mutate policy state even when declined, so the next event must
    /// re-sweep; only an offer-free quiescent state allows skipping.
    last_sweep_offered: bool,
}

impl<P: Scheduler> MachineRun<P> {
    /// Builds a driver over `specs` with the given policy. `specs` is an
    /// owned `Vec` (moved, no copy) or a borrowed slice (see
    /// [`Machine::new`]).
    pub fn new<'s>(cfg: MachineConfig, specs: impl Into<Cow<'s, [TaskSpec]>>, policy: P) -> Self {
        let mut machine = Machine::new(cfg, specs);
        if let Some(every) = policy.tick_interval() {
            machine.arm_tick(every);
        }
        let cores = machine.num_cores();
        MachineRun {
            machine,
            policy,
            sweep_buf: Vec::with_capacity(cores),
            swept_at: vec![0; cores],
            step: 0,
            swept_transitions: 0,
            last_sweep_offered: false,
        }
    }

    /// Read access to the machine mid-run (useful in tests).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Read access to the policy mid-run.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Feeds more task specs mid-run (the chunked cluster feed; see
    /// [`Machine::push_specs`] for the ordering contract).
    pub fn feed_specs<'s>(&mut self, specs: impl Into<Cow<'s, [TaskSpec]>>) {
        self.machine.push_specs(specs);
    }

    /// Runs until the next pending event is at or past `bound` (exclusive)
    /// or the machine pauses with every live task finished. The strict
    /// bound matters for chunked feeds: the next chunk's first arrival can
    /// land exactly on the horizon, and at equal instants arrivals must
    /// fire before dynamic events — so nothing at `bound` may be consumed
    /// before the feed.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the machine.
    pub fn run_until(&mut self, bound: SimTime) -> Result<(), SimError> {
        loop {
            match self.machine.next_event_at() {
                Some(t) if t < bound => {
                    if !self.step()? {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Runs until every task fed so far has finished (the final drain of a
    /// streaming run).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the machine.
    pub fn run_to_end(&mut self) -> Result<(), SimError> {
        while self.step()? {}
        Ok(())
    }

    /// Retires finished tasks off the front of the id space into `sink`
    /// (see [`Machine::retire_finished`]); returns how many were retired.
    pub fn retire_finished(&mut self, sink: impl FnMut(Task)) -> usize {
        self.machine.retire_finished(sink)
    }

    /// Advances by one kernel event, delivering messages to the policy and
    /// sweeping idle cores. Returns `false` when the run is complete.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the machine.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let call = match self.machine.advance()? {
            Some(c) => c,
            None => return Ok(false),
        };
        self.step += 1;
        let m = &mut self.machine;
        let delivered = !matches!(call, PolicyCall::Internal);
        match call {
            PolicyCall::TaskNew(t) => self.policy.on_task_new(m, t),
            PolicyCall::TaskFinished(t, c) => self.policy.on_task_finished(m, t, c),
            PolicyCall::SliceExpired(t, c) => self.policy.on_slice_expired(m, t, c),
            PolicyCall::InterferencePreempt(t, c) => self.policy.on_interference_preempt(m, t, c),
            PolicyCall::Tick => self.policy.on_tick(m),
            PolicyCall::Internal => {}
        }
        // Idle sweep, batched: the sweep is skipped only when it provably
        // cannot matter — the event was kernel-internal (no policy
        // callback ran), no core transitioned to idle since the last
        // sweep, and the last sweep made no `on_core_idle` offer (an
        // offer, even a declined one, may mutate policy state — e.g. the
        // hybrid agent migrates over-limit tasks between its queues while
        // declining a core). In the common loaded phases of a simulation
        // every core is busy and completions arrive stale, so whole
        // swaths of events skip the sweep; when it does run, it walks the
        // idle bitset into a reusable buffer — no allocation and no
        // O(all cores) scan. Cores freed by preempts made during the
        // sweep itself are picked up in follow-up passes, each core
        // offered at most once per event.
        if delivered
            || self.machine.idle_transitions() != self.swept_transitions
            || self.last_sweep_offered
        {
            let mut offered = false;
            loop {
                let idle_now = self.machine.num_idle_cores();
                if idle_now == 0 {
                    break;
                }
                let pass_transitions = self.machine.idle_transitions();
                let mut pass_offered = false;
                if idle_now == 1 {
                    // Fast path for the loaded steady state: exactly one
                    // core just went idle — offer it straight off the
                    // bitset, no snapshot buffer walk.
                    let core = self.machine.first_idle_core().expect("one idle core");
                    if self.swept_at[core.index()] != self.step {
                        self.swept_at[core.index()] = self.step;
                        pass_offered = true;
                        self.policy.on_core_idle(&mut self.machine, core);
                    }
                } else {
                    self.sweep_buf.clear();
                    self.machine.fill_idle_cores(&mut self.sweep_buf);
                    for i in 0..self.sweep_buf.len() {
                        let core = self.sweep_buf[i];
                        if self.machine.core_state(core) == CoreState::Idle
                            && self.swept_at[core.index()] != self.step
                        {
                            self.swept_at[core.index()] = self.step;
                            pass_offered = true;
                            self.policy.on_core_idle(&mut self.machine, core);
                        }
                    }
                }
                offered |= pass_offered;
                // Another pass only if a core was freed during this one
                // (each core is still offered at most once per event).
                if !pass_offered || self.machine.idle_transitions() == pass_transitions {
                    break;
                }
            }
            self.swept_transitions = self.machine.idle_transitions();
            self.last_sweep_offered = offered;
        }
        Ok(true)
    }

    /// Runs to completion, returning the full report (keeps the machine).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the policy strands tasks or
    /// [`SimError::Stalled`] if progress halts for the configured timeout.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        while self.step()? {}
        let finished_at = self.machine.now();
        let core_stats = self.core_stats();
        let tasks = self.machine.tasks().to_vec();
        Ok(SimReport {
            policy: self.policy.name().to_owned(),
            tasks,
            core_stats,
            finished_at,
            machine: self.machine,
        })
    }

    /// Runs to completion, returning the memory-lean [`SlimReport`] — the
    /// machine (event-queue arena, calendar, utilization ledger) is
    /// dropped here instead of riding along.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MachineRun::run`].
    pub fn run_slim(mut self) -> Result<SlimReport, SimError> {
        while self.step()? {}
        let finished_at = self.machine.now();
        let core_stats = self.core_stats();
        let policy = self.policy.name().to_owned();
        let mut machine = self.machine;
        let events_processed = machine.events_processed();
        let max_in_flight = machine.max_in_flight();
        let cancelled = machine.num_cancelled();
        let messages = machine.take_messages();
        let tasks = machine.into_tasks();
        Ok(SlimReport {
            policy,
            tasks,
            core_stats,
            finished_at,
            events_processed,
            messages,
            max_in_flight,
            cancelled,
        })
    }

    /// Per-core statistics of the machine, in core-id order (what the
    /// report constructors collect; public so streaming runs can build
    /// their own reports without consuming the driver).
    pub fn core_stats(&self) -> Vec<CoreStats> {
        (0..self.machine.num_cores())
            .map(|i| self.machine.core_stats(CoreId::from_index(i)))
            .collect()
    }
}

/// Binds a [`Machine`] to a [`Scheduler`] and runs the event loop — the
/// trivial single-machine case of [`MachineRun`].
///
/// # Examples
///
/// Run three tasks under a trivial single-core FIFO agent:
///
/// ```
/// use faas_kernel::{
///     CoreId, Machine, MachineConfig, Scheduler, Simulation, TaskId, TaskSpec,
/// };
/// use faas_simcore::{SimDuration, SimTime};
/// use std::collections::VecDeque;
///
/// struct MiniFifo(VecDeque<TaskId>);
/// impl Scheduler for MiniFifo {
///     fn name(&self) -> &str { "mini-fifo" }
///     fn on_task_new(&mut self, _m: &mut Machine, t: TaskId) { self.0.push_back(t); }
///     fn on_slice_expired(&mut self, _m: &mut Machine, t: TaskId, _c: CoreId) {
///         self.0.push_back(t);
///     }
///     fn on_core_idle(&mut self, m: &mut Machine, core: CoreId) {
///         if let Some(t) = self.0.pop_front() {
///             m.dispatch(core, t, None).unwrap();
///         }
///     }
/// }
///
/// let specs: Vec<TaskSpec> = (0..3)
///     .map(|i| TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10 * (i + 1)), 128))
///     .collect();
/// let report = Simulation::new(MachineConfig::new(1), specs, MiniFifo(VecDeque::new()))
///     .run()
///     .unwrap();
/// assert_eq!(report.tasks.len(), 3);
/// assert!(report.tasks.iter().all(|t| t.completion().is_some()));
/// ```
pub struct Simulation<P> {
    run: MachineRun<P>,
}

impl<P: Scheduler> Simulation<P> {
    /// Builds a simulation over `specs` with the given policy. `specs` is
    /// an owned `Vec<TaskSpec>` (moved into the machine, as before) or a
    /// borrowed `&[TaskSpec]` so multi-policy sweeps build the trace once
    /// (pass `&arc_specs[..]` for an `Arc<[TaskSpec]>`).
    pub fn new<'s>(cfg: MachineConfig, specs: impl Into<Cow<'s, [TaskSpec]>>, policy: P) -> Self {
        Simulation {
            run: MachineRun::new(cfg, specs, policy),
        }
    }

    /// Read access to the machine mid-run (useful in tests).
    pub fn machine(&self) -> &Machine {
        self.run.machine()
    }

    /// Read access to the policy mid-run.
    pub fn policy(&self) -> &P {
        self.run.policy()
    }

    /// Advances by one kernel event (see [`MachineRun::step`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the machine.
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.run.step()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the policy strands tasks or
    /// [`SimError::Stalled`] if progress halts for the configured timeout.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run.run()
    }

    /// Runs to completion, dropping the machine (see
    /// [`MachineRun::run_slim`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Simulation::run`].
    pub fn run_slim(self) -> Result<SlimReport, SimError> {
        self.run.run_slim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Global-queue FIFO over all cores; the simplest complete agent.
    struct TestFifo {
        queue: VecDeque<TaskId>,
    }

    impl Scheduler for TestFifo {
        fn name(&self) -> &str {
            "test-fifo"
        }
        fn on_task_new(&mut self, _m: &mut Machine, task: TaskId) {
            self.queue.push_back(task);
        }
        fn on_slice_expired(&mut self, _m: &mut Machine, task: TaskId, _core: CoreId) {
            self.queue.push_back(task);
        }
        fn on_core_idle(&mut self, m: &mut Machine, core: CoreId) {
            if let Some(t) = self.queue.pop_front() {
                m.dispatch(core, t, None).unwrap();
            }
        }
    }

    fn run_fifo(cores: usize, specs: Vec<TaskSpec>) -> SimReport {
        let cfg = MachineConfig::new(cores).with_cost(crate::CostModel::free());
        Simulation::new(
            cfg,
            specs,
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run()
        .unwrap()
    }

    #[test]
    fn serial_fifo_completes_in_arrival_order() {
        let specs: Vec<TaskSpec> = (0..5)
            .map(|_| TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128))
            .collect();
        let report = run_fifo(1, specs);
        let completions: Vec<u64> = report
            .tasks
            .iter()
            .map(|t| t.completion().unwrap().as_millis())
            .collect();
        assert_eq!(completions, vec![10, 20, 30, 40, 50]);
        assert_eq!(report.finished_at, SimTime::from_millis(50));
    }

    #[test]
    fn parallel_fifo_uses_all_cores() {
        let specs: Vec<TaskSpec> = (0..4)
            .map(|_| TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128))
            .collect();
        let report = run_fifo(4, specs);
        assert_eq!(report.finished_at, SimTime::from_millis(10));
    }

    #[test]
    fn staggered_arrivals_respected() {
        let specs = vec![
            TaskSpec::function(SimTime::from_millis(0), SimDuration::from_millis(30), 128),
            TaskSpec::function(SimTime::from_millis(100), SimDuration::from_millis(5), 128),
        ];
        let report = run_fifo(1, specs);
        assert_eq!(report.tasks[0].completion(), Some(SimTime::from_millis(30)));
        // Second task arrives at 100, after the first finished.
        assert_eq!(report.tasks[1].response_time(), Some(SimDuration::ZERO));
        assert_eq!(
            report.tasks[1].completion(),
            Some(SimTime::from_millis(105))
        );
    }

    #[test]
    fn report_totals() {
        let specs: Vec<TaskSpec> = (0..3)
            .map(|_| TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(20), 128))
            .collect();
        let report = run_fifo(1, specs);
        assert_eq!(report.total_cpu_time(), SimDuration::from_millis(60));
        assert_eq!(report.total_preemptions(), 0);
        assert_eq!(report.policy, "test-fifo");
    }

    #[test]
    fn borrowed_specs_match_owned_specs() {
        // The shared-spec path must behave exactly like handing over an
        // owned Vec (same task ids, same completions).
        let specs: Vec<TaskSpec> = (0..6)
            .map(|i| TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(5 + i), 128))
            .collect();
        let cfg = || MachineConfig::new(2).with_cost(crate::CostModel::free());
        let owned = Simulation::new(
            cfg(),
            specs.clone(),
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run()
        .unwrap();
        let borrowed = Simulation::new(
            cfg(),
            &specs,
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run()
        .unwrap();
        let shared: std::sync::Arc<[TaskSpec]> = specs.into();
        let arced = Simulation::new(
            cfg(),
            &shared[..],
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run()
        .unwrap();
        let completions =
            |r: &SimReport| -> Vec<_> { r.tasks.iter().map(|t| t.completion()).collect() };
        assert_eq!(completions(&owned), completions(&borrowed));
        assert_eq!(completions(&owned), completions(&arced));
    }

    #[test]
    fn chunked_feed_matches_batch_run() {
        // The kernel half of the streaming differential: feeding the same
        // specs chunk by chunk (run_until each next chunk's start, retire
        // between chunks) must replay the batch run event for event —
        // same completions, same core stats, same event count — even with
        // interference timers straddling the chunk horizons.
        let specs: Vec<TaskSpec> = (0..40)
            .map(|i| {
                TaskSpec::function(
                    SimTime::from_millis(7 * i),
                    SimDuration::from_millis(5 + (i % 9)),
                    128,
                )
            })
            .collect();
        let cfg = || {
            MachineConfig::new(2)
                .with_cost(crate::CostModel::from_micros(300, 1_500))
                .with_interference(crate::InterferenceConfig {
                    mean_interval: SimDuration::from_millis(40),
                    duration: SimDuration::from_millis(3),
                })
                .with_seed(11)
        };
        let batch = MachineRun::new(
            cfg(),
            &specs,
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run_slim()
        .unwrap();

        let mut streamed = MachineRun::new(
            cfg(),
            Vec::new(),
            TestFifo {
                queue: VecDeque::new(),
            },
        );
        let mut drained: Vec<Task> = Vec::new();
        let chunks: Vec<&[TaskSpec]> = specs.chunks(7).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            streamed.feed_specs(*chunk);
            match chunks.get(i + 1) {
                Some(next) => streamed.run_until(next[0].arrival).unwrap(),
                None => streamed.run_to_end().unwrap(),
            }
            streamed.retire_finished(|t| drained.push(t));
        }
        streamed.retire_finished(|t| drained.push(t));

        assert_eq!(drained.len(), batch.tasks.len());
        for (a, b) in drained.iter().zip(&batch.tasks) {
            assert_eq!(a.completion(), b.completion());
            assert_eq!(a.cpu_time(), b.cpu_time());
            assert_eq!(a.preemptions(), b.preemptions());
        }
        assert_eq!(streamed.core_stats(), batch.core_stats);
        assert_eq!(
            streamed.machine().events_processed(),
            batch.events_processed
        );
        assert_eq!(streamed.machine().num_finished(), batch.tasks.len());
    }

    #[test]
    fn slim_report_matches_full_report() {
        let specs: Vec<TaskSpec> = (0..4)
            .map(|_| TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128))
            .collect();
        let cfg = MachineConfig::new(2)
            .with_cost(crate::CostModel::free())
            .with_message_log();
        let full = Simulation::new(
            cfg.clone(),
            &specs,
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run()
        .unwrap();
        let slim = Simulation::new(
            cfg,
            &specs,
            TestFifo {
                queue: VecDeque::new(),
            },
        )
        .run_slim()
        .unwrap();
        assert_eq!(slim.policy, full.policy);
        assert_eq!(slim.finished_at, full.finished_at);
        assert_eq!(slim.core_stats, full.core_stats);
        assert_eq!(slim.total_cpu_time(), full.total_cpu_time());
        assert_eq!(slim.total_preemptions(), full.total_preemptions());
        assert_eq!(slim.tasks.len(), full.tasks.len());
        for (a, b) in slim.tasks.iter().zip(&full.tasks) {
            assert_eq!(a.completion(), b.completion());
            assert_eq!(a.cpu_time(), b.cpu_time());
        }
        assert_eq!(slim.messages, full.machine.messages());
        assert!(!slim.messages.is_empty(), "log was enabled");
    }
}
