//! # faas-kernel
//!
//! A deterministic, event-level simulation of the OS substrate the paper
//! schedules on: CPU cores, CPU-bound tasks, context-switch costs, and a
//! ghOSt-style split between a *kernel side* ([`Machine`]) that owns ground
//! truth and *user-space agents* ([`Scheduler`]) that make placement
//! decisions via two verbs: [`Machine::dispatch`] and [`Machine::preempt`].
//!
//! ## Why a simulator?
//!
//! The paper runs on a custom ghOSt kernel on a 72-thread Xeon; neither is
//! available in this environment. Every effect the paper measures, however,
//! is *mechanistic* at the level this crate models:
//!
//! * CFS's execution-time blow-up comes from time-slicing many concurrent
//!   tasks (wall-clock execution ≫ CPU time) plus per-switch overhead;
//! * FIFO's response-time blow-up comes from head-of-line blocking in a
//!   global run queue;
//! * plain FIFO's bad p99 *execution* time comes from native-kernel
//!   interference, which we model explicitly ([`InterferenceConfig`]).
//!
//! See `DESIGN.md` at the workspace root for the full substitution table.
//!
//! ## Example
//!
//! ```
//! use faas_kernel::{CoreId, Machine, MachineConfig, Scheduler, Simulation, TaskId, TaskSpec};
//! use faas_simcore::{SimDuration, SimTime};
//! use std::collections::VecDeque;
//!
//! // A 2-core FIFO agent in ~15 lines.
//! struct Fifo(VecDeque<TaskId>);
//! impl Scheduler for Fifo {
//!     fn name(&self) -> &str { "fifo" }
//!     fn on_task_new(&mut self, _m: &mut Machine, t: TaskId) { self.0.push_back(t); }
//!     fn on_slice_expired(&mut self, _m: &mut Machine, t: TaskId, _c: CoreId) {
//!         self.0.push_back(t);
//!     }
//!     fn on_core_idle(&mut self, m: &mut Machine, core: CoreId) {
//!         if let Some(t) = self.0.pop_front() { m.dispatch(core, t, None).unwrap(); }
//!     }
//! }
//!
//! let specs = vec![
//!     TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(20), 128),
//!     TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 256),
//! ];
//! let report = Simulation::new(MachineConfig::new(2), specs, Fifo(VecDeque::new()))
//!     .run()
//!     .unwrap();
//! assert!(report.tasks.iter().all(|t| t.completion().is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod cost;
mod idle;
mod machine;
mod message;
mod sched;
mod task;
mod util;

pub use crate::core::{CoreId, CoreState, CoreStats};
pub use cost::CostModel;
pub use machine::{
    InterferenceConfig, Machine, MachineConfig, PolicyCall, SchedError, SimError, StormWindow,
};
pub use message::KernelMessage;
pub use sched::{MachineRun, Scheduler, SimReport, Simulation, SlimReport};
pub use task::{PlacementHint, Task, TaskId, TaskSpec, TaskState};
pub use util::UtilizationLedger;
