//! Incrementally maintained set of idle cores.
//!
//! The kernel event loop consults "which cores are idle?" after *every*
//! event; scanning all cores each time made the hot path O(cores) per
//! event. [`IdleSet`] is a bitset updated on every core state transition
//! (dispatch, preempt, finish, interference), so membership updates are
//! O(1) and iteration is O(idle cores) in ascending id order.
//!
//! The first 64 cores live in an inline word — machines up to 64 cores
//! (the paper's is 50) never touch the heap on the hot path; larger
//! machines spill into a vector of overflow words.

use crate::core::CoreId;

/// A bitset over core indices tracking which cores are currently idle.
#[derive(Debug, Clone)]
pub(crate) struct IdleSet {
    /// Cores 0..64.
    word0: u64,
    /// Cores 64.., one word per 64 (empty for small machines).
    rest: Vec<u64>,
    count: usize,
}

impl IdleSet {
    /// Creates a set over `cores` cores, all initially idle.
    pub(crate) fn all_idle(cores: usize) -> Self {
        let words = cores.div_ceil(64).max(1);
        let mut set = IdleSet {
            word0: 0,
            rest: vec![0; words - 1],
            count: cores,
        };
        for w in 0..words {
            let used = (cores - w * 64).min(64);
            let full = if used == 64 {
                u64::MAX
            } else {
                (1u64 << used) - 1
            };
            *set.word_mut(w) = full;
        }
        set
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w == 0 {
            self.word0
        } else {
            self.rest[w - 1]
        }
    }

    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w == 0 {
            &mut self.word0
        } else {
            &mut self.rest[w - 1]
        }
    }

    /// Number of idle cores.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// Whether `core` is in the set.
    #[inline]
    pub(crate) fn contains(&self, core: CoreId) -> bool {
        let i = core.index();
        self.word(i / 64) & (1u64 << (i % 64)) != 0
    }

    /// Marks `core` idle. The caller guarantees it was not idle before
    /// (core state transitions are exact; checked in debug builds).
    #[inline]
    pub(crate) fn insert(&mut self, core: CoreId) {
        let i = core.index();
        debug_assert!(!self.contains(core), "core {core} already idle");
        *self.word_mut(i / 64) |= 1u64 << (i % 64);
        self.count += 1;
    }

    /// Marks `core` busy. The caller guarantees it was idle before
    /// (checked in debug builds).
    #[inline]
    pub(crate) fn remove(&mut self, core: CoreId) {
        let i = core.index();
        debug_assert!(self.contains(core), "core {core} already busy");
        *self.word_mut(i / 64) &= !(1u64 << (i % 64));
        self.count -= 1;
    }

    /// The lowest-numbered idle core, if any. One bit scan for machines
    /// up to 64 cores — the driver's fast path when exactly one core is
    /// idle (the common state of a loaded simulation).
    #[inline]
    pub(crate) fn first(&self) -> Option<CoreId> {
        self.iter().next()
    }

    /// Iterates the idle cores in ascending id order without allocating.
    #[inline]
    pub(crate) fn iter(&self) -> IdleIter<'_> {
        IdleIter {
            rest: &self.rest,
            word_idx: 0,
            current: self.word0,
        }
    }

    /// Appends the idle cores to `buf` in ascending id order (the
    /// allocation-free snapshot the simulation driver sweeps over).
    pub(crate) fn fill(&self, buf: &mut Vec<CoreId>) {
        buf.extend(self.iter());
    }
}

/// Ascending-order iterator over the idle cores (one bit-scan per step).
#[derive(Debug)]
pub(crate) struct IdleIter<'a> {
    rest: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IdleIter<'_> {
    type Item = CoreId;

    #[inline]
    fn next(&mut self) -> Option<CoreId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(CoreId::from_index(self.word_idx * 64 + bit));
            }
            if self.word_idx >= self.rest.len() {
                return None;
            }
            self.current = self.rest[self.word_idx];
            self.word_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(set: &IdleSet) -> Vec<usize> {
        set.iter().map(|c| c.index()).collect()
    }

    #[test]
    fn starts_all_idle() {
        let set = IdleSet::all_idle(5);
        assert_eq!(set.len(), 5);
        assert_eq!(ids(&set), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut set = IdleSet::all_idle(3);
        set.remove(CoreId::from_index(1));
        assert_eq!(set.len(), 2);
        assert_eq!(ids(&set), vec![0, 2]);
        assert!(!set.contains(CoreId::from_index(1)));
        set.insert(CoreId::from_index(1));
        assert_eq!(ids(&set), vec![0, 1, 2]);
    }

    #[test]
    fn spans_word_boundaries() {
        let mut set = IdleSet::all_idle(130);
        assert_eq!(set.len(), 130);
        for i in 0..130 {
            if i % 3 != 0 {
                set.remove(CoreId::from_index(i));
            }
        }
        let expect: Vec<usize> = (0..130).filter(|i| i % 3 == 0).collect();
        assert_eq!(ids(&set), expect);
        assert_eq!(set.len(), expect.len());
    }

    #[test]
    fn exact_multiple_of_word_size() {
        let set = IdleSet::all_idle(128);
        assert_eq!(set.len(), 128);
        assert_eq!(set.iter().count(), 128);
        assert!(set.contains(CoreId::from_index(127)));
        assert!(set.contains(CoreId::from_index(64)));
        assert!(set.contains(CoreId::from_index(63)));
    }

    #[test]
    fn fill_appends_in_order() {
        let mut set = IdleSet::all_idle(4);
        set.remove(CoreId::from_index(2));
        let mut buf = Vec::new();
        set.fill(&mut buf);
        assert_eq!(
            buf,
            vec![
                CoreId::from_index(0),
                CoreId::from_index(1),
                CoreId::from_index(3)
            ]
        );
    }
}
