//! Per-core utilization accounting.
//!
//! The paper's provider-side mechanisms (time-limit adaptation and CPU-group
//! rightsizing, §IV-B) are driven by a utilization monitor — their daemon
//! samples psutil into shared memory. Our simulated equivalent accumulates
//! per-core busy microseconds into fixed-width time buckets, from which the
//! policy (and the figure harnesses) read windowed averages.

use faas_simcore::{SimDuration, SimTime};

/// Accumulates busy time per core in fixed-width buckets.
///
/// # Examples
///
/// ```
/// use faas_kernel::UtilizationLedger;
/// use faas_simcore::{SimDuration, SimTime};
///
/// let mut ledger = UtilizationLedger::new(2, SimDuration::from_secs(1));
/// // Core 0 busy for the first half of second zero.
/// ledger.record_busy(0, SimTime::ZERO, SimTime::from_millis(500));
/// assert_eq!(ledger.bucket_utilization(0, 0), 0.5);
/// assert_eq!(ledger.bucket_utilization(1, 0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationLedger {
    bucket: SimDuration,
    /// `busy[core][bucket]` = busy microseconds of `core` in `bucket`.
    busy: Vec<Vec<u64>>,
    /// Per-core memo of the last bucket written: `(start_us, end_us,
    /// index)` of that bucket. Busy intervals arrive in non-decreasing
    /// time order and are usually much shorter than a bucket, so the
    /// common case re-hits the memoized bucket and skips the `u64`
    /// division on the event hot path.
    hint: Vec<(u64, u64, usize)>,
}

impl UtilizationLedger {
    /// Creates a ledger for `cores` cores with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(cores: usize, bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        UtilizationLedger {
            bucket,
            busy: vec![Vec::new(); cores],
            hint: vec![(0, 0, 0); cores],
        }
    }

    /// Bucket width used by this ledger.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.busy.len()
    }

    /// Records that `core` was busy during `[from, to)`, splitting the
    /// interval across buckets.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `to < from`.
    pub fn record_busy(&mut self, core: usize, from: SimTime, to: SimTime) {
        assert!(to >= from, "interval must be ordered");
        let width = self.bucket.as_micros();
        let lane = &mut self.busy[core];
        let mut cur = from.as_micros();
        let end = to.as_micros();
        // Fast path: the whole interval falls inside the bucket this core
        // last wrote (run segments are typically milliseconds against
        // 1-second buckets) — one add, no division.
        let (hint_start, hint_end, hint_idx) = self.hint[core];
        if cur >= hint_start && end <= hint_end && cur < end {
            lane[hint_idx] += end - cur;
            return;
        }
        while cur < end {
            let idx = (cur / width) as usize;
            let bucket_end = (idx as u64 + 1) * width;
            let chunk = end.min(bucket_end) - cur;
            if lane.len() <= idx {
                lane.resize(idx + 1, 0);
            }
            lane[idx] += chunk;
            cur += chunk;
            self.hint[core] = (bucket_end - width, bucket_end, idx);
        }
    }

    /// Number of buckets that have been touched on any core.
    pub fn bucket_count(&self) -> usize {
        self.busy.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of `bucket` during which `core` was busy, in `[0, 1]`.
    /// Untouched buckets count as 0.
    pub fn bucket_utilization(&self, core: usize, bucket: usize) -> f64 {
        let lane = &self.busy[core];
        let v = lane.get(bucket).copied().unwrap_or(0);
        v as f64 / self.bucket.as_micros() as f64
    }

    /// Average utilization of a set of cores over a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn group_bucket_utilization(&self, cores: &[usize], bucket: usize) -> f64 {
        assert!(!cores.is_empty(), "group must be non-empty");
        cores
            .iter()
            .map(|&c| self.bucket_utilization(c, bucket))
            .sum::<f64>()
            / cores.len() as f64
    }

    /// Average utilization of one core over the trailing `window` ending at
    /// `now` (partial leading buckets are weighted by coverage).
    pub fn windowed_utilization(&self, core: usize, now: SimTime, window: SimDuration) -> f64 {
        let width = self.bucket.as_micros();
        let end = now.as_micros();
        let start = end.saturating_sub(window.as_micros());
        if end == start {
            return 0.0;
        }
        let lane = &self.busy[core];
        let mut busy = 0u64;
        let mut cur = start;
        while cur < end {
            let idx = (cur / width) as usize;
            let bucket_end = (idx as u64 + 1) * width;
            let span = end.min(bucket_end) - cur;
            let in_bucket = lane.get(idx).copied().unwrap_or(0);
            // Assume busy time is spread uniformly within the bucket when
            // taking a partial slice of it.
            busy += (in_bucket as u128 * span as u128 / width as u128) as u64;
            cur += span;
        }
        busy as f64 / (end - start) as f64
    }

    /// Total busy time accumulated by `core`.
    pub fn total_busy(&self, core: usize) -> SimDuration {
        SimDuration::from_micros(self.busy[core].iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> UtilizationLedger {
        UtilizationLedger::new(2, SimDuration::from_secs(1))
    }

    #[test]
    fn interval_splits_across_buckets() {
        let mut l = ledger();
        // 0.5s .. 2.5s busy => buckets 0:0.5, 1:1.0, 2:0.5
        l.record_busy(0, SimTime::from_millis(500), SimTime::from_millis(2_500));
        assert!((l.bucket_utilization(0, 0) - 0.5).abs() < 1e-9);
        assert!((l.bucket_utilization(0, 1) - 1.0).abs() < 1e-9);
        assert!((l.bucket_utilization(0, 2) - 0.5).abs() < 1e-9);
        assert_eq!(l.bucket_count(), 3);
    }

    #[test]
    fn empty_interval_is_noop() {
        let mut l = ledger();
        l.record_busy(0, SimTime::from_millis(100), SimTime::from_millis(100));
        assert_eq!(l.bucket_count(), 0);
        assert_eq!(l.total_busy(0), SimDuration::ZERO);
    }

    #[test]
    fn group_average() {
        let mut l = ledger();
        l.record_busy(0, SimTime::ZERO, SimTime::from_secs(1)); // core 0: 100%
                                                                // core 1 idle.
        assert!((l.group_bucket_utilization(&[0, 1], 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn windowed_utilization_full_and_partial() {
        let mut l = ledger();
        l.record_busy(0, SimTime::ZERO, SimTime::from_secs(2));
        // Fully busy window.
        let u = l.windowed_utilization(0, SimTime::from_secs(2), SimDuration::from_secs(2));
        assert!((u - 1.0).abs() < 1e-9);
        // Window extends past recorded data: 2s busy out of 4s.
        let u = l.windowed_utilization(0, SimTime::from_secs(4), SimDuration::from_secs(4));
        assert!((u - 0.5).abs() < 1e-9);
        // Zero-length window.
        assert_eq!(
            l.windowed_utilization(0, SimTime::ZERO, SimDuration::ZERO),
            0.0
        );
    }

    #[test]
    fn total_busy_accumulates() {
        let mut l = ledger();
        l.record_busy(1, SimTime::ZERO, SimTime::from_millis(300));
        l.record_busy(1, SimTime::from_millis(700), SimTime::from_millis(900));
        assert_eq!(l.total_busy(1), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic]
    fn reversed_interval_panics() {
        let mut l = ledger();
        l.record_busy(0, SimTime::from_millis(5), SimTime::from_millis(1));
    }
}
