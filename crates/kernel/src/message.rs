//! Kernel→agent message vocabulary (the ghOSt protocol, §III-A).
//!
//! ghOSt exposes thread-state changes to user-space agents as messages;
//! the simulated kernel can record an equivalent log for observability and
//! protocol tests.

use faas_simcore::SimDuration;

use crate::core::CoreId;
use crate::task::TaskId;

/// One message on the simulated kernel→agent channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMessage {
    /// `MSG_TASK_NEW`: a task entered the enclave.
    TaskNew {
        /// The arriving task.
        task: TaskId,
    },
    /// Agent committed a task to a core (the "transaction" in ghOSt terms).
    Dispatch {
        /// The dispatched task.
        task: TaskId,
        /// Target core.
        core: CoreId,
        /// Slice bound, `None` for run-to-completion.
        slice: Option<SimDuration>,
    },
    /// `MSG_TASK_PREEMPT`: a task was taken off its core.
    TaskPreempt {
        /// The preempted task.
        task: TaskId,
        /// The core it ran on.
        core: CoreId,
        /// `true` when the host OS (native CFS class) grabbed the core,
        /// `false` for an explicit policy preemption.
        by_interference: bool,
    },
    /// A dispatch time slice ran out.
    SliceExpired {
        /// The task whose slice expired.
        task: TaskId,
        /// The core it ran on.
        core: CoreId,
    },
    /// `MSG_TASK_DEAD`: a task finished and its process can be freed.
    TaskDead {
        /// The finished task.
        task: TaskId,
        /// The core it finished on.
        core: CoreId,
    },
    /// Host-OS interference claimed a core.
    InterferenceStart {
        /// The claimed core.
        core: CoreId,
    },
    /// Host-OS interference released a core.
    InterferenceEnd {
        /// The released core.
        core: CoreId,
    },
}

impl KernelMessage {
    /// The task this message concerns, if any.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            KernelMessage::TaskNew { task }
            | KernelMessage::Dispatch { task, .. }
            | KernelMessage::TaskPreempt { task, .. }
            | KernelMessage::SliceExpired { task, .. }
            | KernelMessage::TaskDead { task, .. } => Some(*task),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_extraction() {
        let t = TaskId(4);
        let c = CoreId(1);
        assert_eq!(KernelMessage::TaskNew { task: t }.task(), Some(t));
        assert_eq!(KernelMessage::TaskDead { task: t, core: c }.task(), Some(t));
        assert_eq!(KernelMessage::InterferenceStart { core: c }.task(), None);
    }
}
