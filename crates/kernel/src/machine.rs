//! The simulated machine: cores + tasks + the kernel event loop.
//!
//! [`Machine`] plays the role of the ghOSt *kernel side*: it owns the
//! ground truth about cores and tasks, delivers scheduling messages
//! upward, and exposes the two verbs a user-space agent may invoke —
//! [`Machine::dispatch`] (commit a task to a core, optionally with a time
//! slice) and [`Machine::preempt`] (take a task off a core). Policies never
//! mutate tasks or cores directly.

use std::borrow::Cow;
use std::collections::VecDeque;

use faas_simcore::{EventQueue, SimDuration, SimRng, SimTime};

use crate::core::{Core, CoreId, CoreState, CoreStats};
use crate::cost::CostModel;
use crate::idle::IdleSet;
use crate::message::KernelMessage;
use crate::task::{Task, TaskId, TaskSpec, TaskState};
use crate::util::UtilizationLedger;

/// Host-OS interference model: the native kernel (timer ticks, kthreads,
/// the CFS class ghOSt coexists with) periodically claims a core.
///
/// Table I of the paper attributes plain FIFO's poor p99 *execution* time to
/// exactly this effect ("the p99 execution time of FIFO in the ghOSt system
/// suffers due to the preemption from Linux native CFS").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterferenceConfig {
    /// Mean interval between interference episodes per core (exponential).
    pub mean_interval: SimDuration,
    /// Mean length of one episode (jittered ±50%).
    pub duration: SimDuration,
}

impl Default for InterferenceConfig {
    /// Roughly one 5 ms housekeeping episode every 30 s per core.
    fn default() -> Self {
        InterferenceConfig {
            mean_interval: SimDuration::from_secs(30),
            duration: SimDuration::from_millis(5),
        }
    }
}

/// An interference-storm window: while the machine clock is inside
/// `[start, end)`, host-OS interference episodes arrive `intensity`
/// times more often than the baseline
/// [`InterferenceConfig::mean_interval`].
///
/// Storms only *post-scale* the exponential gap draws — the RNG draw
/// count and order never change — so a machine configured with an empty
/// storm list is bit-identical to one with no storms at all. This is
/// the kernel half of the cluster chaos layer's "interference storm"
/// fault (see `faas-cluster`'s `chaos` module); it has no effect unless
/// [`MachineConfig::interference`] is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormWindow {
    /// First instant inside the storm.
    pub start: SimTime,
    /// First instant after the storm.
    pub end: SimTime,
    /// Episode-frequency multiplier (> 0; values above 1 mean more
    /// interference, below 1 mean a lull).
    pub intensity: f64,
}

/// Divides an exponential gap draw (in seconds) by the intensity of the
/// storm window containing `at`, if any. With no matching window the
/// draw passes through untouched — no float op, so empty or
/// non-overlapping storm lists stay bit-identical to the baseline.
fn storm_scaled(storms: &[StormWindow], at: SimTime, gap_secs: f64) -> f64 {
    for w in storms {
        if at >= w.start && at < w.end {
            return gap_secs / w.intensity;
        }
    }
    gap_secs
}

/// Configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of CPU cores in the enclave.
    pub cores: usize,
    /// Context-switch cost model.
    pub cost: CostModel,
    /// Optional host-OS interference.
    pub interference: Option<InterferenceConfig>,
    /// Interference-storm windows (sorted or not; first match wins).
    pub storms: Vec<StormWindow>,
    /// Bucket width of the utilization ledger.
    pub util_bucket: SimDuration,
    /// Seed for the machine's internal randomness (interference timing).
    pub seed: u64,
    /// Record the kernel→agent message log (costs memory; great for tests).
    pub log_messages: bool,
    /// Abort with [`SimError::Stalled`] if no task finishes for this long
    /// while some remain unfinished.
    pub stall_timeout: SimDuration,
}

impl MachineConfig {
    /// A machine with `cores` cores and defaults everywhere else
    /// (default cost model, no interference, 1 s utilization buckets).
    pub fn new(cores: usize) -> Self {
        MachineConfig {
            cores,
            cost: CostModel::default(),
            interference: None,
            storms: Vec::new(),
            util_bucket: SimDuration::from_secs(1),
            seed: 0xFAA5,
            log_messages: false,
            stall_timeout: SimDuration::from_secs(3_600),
        }
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables host-OS interference.
    pub fn with_interference(mut self, i: InterferenceConfig) -> Self {
        self.interference = Some(i);
        self
    }

    /// Sets the interference-storm windows.
    ///
    /// # Panics
    ///
    /// Panics if a window is empty or its intensity is not positive.
    pub fn with_storms(mut self, storms: Vec<StormWindow>) -> Self {
        for w in &storms {
            assert!(w.start < w.end, "storm window must be non-empty");
            assert!(w.intensity > 0.0, "storm intensity must be positive");
        }
        self.storms = storms;
        self
    }

    /// Enables the kernel message log.
    pub fn with_message_log(mut self) -> Self {
        self.log_messages = true;
        self
    }

    /// Sets the RNG seed for interference timing.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Errors returned by the scheduling verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// The referenced core does not exist.
    NoSuchCore(CoreId),
    /// The referenced task does not exist.
    NoSuchTask(TaskId),
    /// Dispatch onto a core that is not idle.
    CoreBusy(CoreId),
    /// Dispatch of a task that is not runnable (already running/finished),
    /// or preempt of a core that runs no task.
    NotRunnable(TaskId),
    /// Preempt on an idle or interference-occupied core.
    NothingRunning(CoreId),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoSuchCore(c) => write!(f, "no such core {c}"),
            SchedError::NoSuchTask(t) => write!(f, "no such task {t}"),
            SchedError::CoreBusy(c) => write!(f, "core {c} is not idle"),
            SchedError::NotRunnable(t) => write!(f, "task {t} is not runnable"),
            SchedError::NothingRunning(c) => write!(f, "core {c} runs no task"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Terminal simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while tasks were still unfinished — the
    /// policy lost track of runnable tasks.
    Deadlock {
        /// Number of unfinished tasks at the time of the deadlock.
        unfinished: usize,
    },
    /// No task finished for `stall_timeout` of virtual time.
    Stalled {
        /// Virtual instant at which the stall was declared.
        at: SimTime,
        /// Number of unfinished tasks.
        unfinished: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { unfinished } => {
                write!(f, "event queue drained with {unfinished} unfinished tasks")
            }
            SimError::Stalled { at, unfinished } => {
                write!(f, "no progress by {at} with {unfinished} unfinished tasks")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A notification the kernel hands to the user-space policy.
///
/// These correspond one-to-one with the ghOSt message types the paper's
/// agents consume (`MSG_TASK_NEW`, `MSG_TASK_PREEMPT`, `MSG_TASK_DEAD`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyCall {
    /// A task arrived and awaits placement.
    TaskNew(TaskId),
    /// A task finished. For CPU-bound tasks the core is where it ran; a
    /// task that finished an off-CPU wait ([`TaskSpec::io_wait`]) was on
    /// no core, and the argument is conventionally core 0.
    TaskFinished(TaskId, CoreId),
    /// A task's dispatch time slice expired; it is now `Preempted` and the
    /// policy must re-queue it.
    SliceExpired(TaskId, CoreId),
    /// The host OS kicked a task off a core; it is now `Preempted`.
    InterferencePreempt(TaskId, CoreId),
    /// Periodic policy tick.
    Tick,
    /// Kernel-internal event; nothing to deliver (cores may have changed
    /// state, so the driver still sweeps idle cores).
    Internal,
}

/// A dynamic kernel event. Task arrivals are *not* heap events: they are
/// known ahead of the clock (at construction, or when a streamed chunk is
/// fed), so they live in a time-ordered calendar (`Machine::arrivals`)
/// consumed from the front — the hot event heap then only ever holds the
/// handful of in-flight per-core timers (completions, slice expiries,
/// interference, ticks), keeping its depth tiny.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(TaskId),
    Complete {
        core: CoreId,
        generation: u64,
    },
    SliceExpire {
        core: CoreId,
        generation: u64,
    },
    IoComplete(TaskId),
    /// Abandonment deadline of a task with [`TaskSpec::deadline`] set.
    /// Scheduled when the arrival fires (and re-armed by a past-deadline
    /// dispatch), so deadline-free runs carry zero extra events.
    Cancel(TaskId),
    InterferenceStart(CoreId),
    InterferenceEnd {
        core: CoreId,
        generation: u64,
    },
    Tick,
}

/// The simulated machine (ghOSt kernel side).
pub struct Machine {
    cfg: MachineConfig,
    now: SimTime,
    cores: Vec<Core>,
    /// Live task records. Task `id` lives at deque index
    /// `id.index() - task_base`; ids below `task_base` were retired via
    /// [`Machine::retire_finished`] (streaming runs) and no longer exist.
    /// Batch runs never retire, so the deque stays a plain dense array.
    tasks: VecDeque<Task>,
    /// Number of tasks retired off the front of `tasks` (all finished).
    task_base: usize,
    events: EventQueue<Event>,
    /// Task arrivals sorted by (time, spec order) — the static half of the
    /// future-event list, popped from the front. At equal instants an
    /// arrival fires before any dynamic event, which reproduces the
    /// insertion-sequence tie-break of the old all-in-one heap exactly
    /// (arrivals were always scheduled first). A deque (not a Vec plus
    /// cursor) so streaming feeds can push new arrivals while consumed
    /// ones are dropped — memory stays O(in-flight), not O(total).
    arrivals: VecDeque<(SimTime, TaskId)>,
    /// `arrivals.front().0` memoized (`SimTime::MAX` once exhausted), so
    /// the per-event merge check is one register compare.
    next_arrival_at: SimTime,
    util: UtilizationLedger,
    rng: SimRng,
    messages: Vec<(SimTime, KernelMessage)>,
    finished: usize,
    last_progress: SimTime,
    tick_every: Option<SimDuration>,
    /// Incrementally maintained set of idle cores (updated on every core
    /// state transition; replaces the per-event O(cores) scan).
    idle: IdleSet,
    /// Monotonic count of busy→idle transitions. The driver compares it
    /// against the value at its last idle sweep to decide whether any
    /// core's state changed — the batching signal, at the cost of one
    /// increment on the hot path.
    idle_transitions: u64,
    /// Kernel events processed so far (stale generations included).
    events_processed: u64,
    /// Tasks whose arrival event has fired (retired ones included).
    arrived: u64,
    /// Peak in-flight backlog: max over time of arrived − terminal tasks.
    /// Only grows at arrivals, so it is updated there.
    max_in_flight: u64,
    /// Tasks cancelled past their deadline (monotonic; retirement does not
    /// decrement it).
    cancelled_total: u64,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .field("tasks", &self.num_tasks())
            .field("finished", &self.finished)
            .finish()
    }
}

impl Machine {
    /// Builds a machine and schedules the arrival of every task in `specs`.
    ///
    /// Task ids are assigned densely in `specs` order. `specs` is either
    /// owned (`Vec<TaskSpec>`, moved into the machine without copying) or
    /// borrowed (`&[TaskSpec]`, `&Vec<TaskSpec>`, `&arc_specs[..]` for an
    /// `Arc<[TaskSpec]>`; specs are cloned per task) — so multi-policy
    /// sweeps synthesize one trace and hand every run a borrow instead of
    /// cloning whole spec vectors up front.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero.
    pub fn new<'s>(cfg: MachineConfig, specs: impl Into<Cow<'s, [TaskSpec]>>) -> Self {
        assert!(cfg.cores > 0, "machine needs at least one core");
        let mut events = EventQueue::new();
        let tasks: VecDeque<Task> = match specs.into() {
            Cow::Owned(specs) => specs.into_iter().map(Task::new).collect(),
            Cow::Borrowed(specs) => specs.iter().cloned().map(Task::new).collect(),
        };
        let mut arrivals: Vec<(SimTime, TaskId)> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.spec().arrival, TaskId(i as u32)))
            .collect();
        // Stable by time: equal instants keep spec order, the old
        // insertion-sequence tie-break.
        arrivals.sort_by_key(|&(at, _)| at);
        let mut rng = SimRng::seed_from(cfg.seed);
        if let Some(icfg) = cfg.interference {
            for c in 0..cfg.cores {
                let gap = rng.exponential(icfg.mean_interval.as_secs_f64());
                let gap = storm_scaled(&cfg.storms, SimTime::ZERO, gap);
                let at = SimTime::ZERO + SimDuration::from_secs_f64(gap);
                events.schedule_untracked(at, Event::InterferenceStart(CoreId(c as u16)));
            }
        }
        let util = UtilizationLedger::new(cfg.cores, cfg.util_bucket);
        Machine {
            cores: (0..cfg.cores).map(|_| Core::new()).collect(),
            tasks,
            task_base: 0,
            events,
            next_arrival_at: arrivals.first().map_or(SimTime::MAX, |&(at, _)| at),
            arrivals: VecDeque::from(arrivals),
            util,
            rng,
            messages: Vec::new(),
            finished: 0,
            now: SimTime::ZERO,
            last_progress: SimTime::ZERO,
            tick_every: None,
            idle: IdleSet::all_idle(cfg.cores),
            idle_transitions: 0,
            events_processed: 0,
            arrived: 0,
            max_in_flight: 0,
            cancelled_total: 0,
            cfg,
        }
    }

    /// Arms the periodic [`PolicyCall::Tick`]; used by the simulation driver.
    pub(crate) fn arm_tick(&mut self, every: SimDuration) {
        assert!(!every.is_zero(), "tick interval must be positive");
        self.tick_every = Some(every);
        self.events
            .schedule_untracked(self.now + every, Event::Tick);
    }

    // ---- queries -----------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of tasks ever handed to the machine (finished, live, or
    /// retired).
    pub fn num_tasks(&self) -> usize {
        self.task_base + self.tasks.len()
    }

    /// Number of terminal tasks — finished or cancelled, retired ones
    /// included (only terminal tasks can be retired).
    pub fn num_finished(&self) -> usize {
        self.task_base + self.finished
    }

    /// Number of tasks cancelled past their [`TaskSpec::deadline`]
    /// (included in [`Machine::num_finished`]; monotonic across
    /// retirement).
    pub fn num_cancelled(&self) -> u64 {
        self.cancelled_total
    }

    /// Peak in-flight backlog so far: the maximum, over the run, of tasks
    /// that have arrived but not reached a terminal state. This is the
    /// quantity overload middleware bounds — with no admission control a
    /// past-saturation trace grows it without bound.
    pub fn max_in_flight(&self) -> u64 {
        self.max_in_flight
    }

    /// Number of task records currently held in memory (fed but not yet
    /// retired) — the quantity streaming runs keep bounded.
    pub fn num_live_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Index of `id` into the live-task deque.
    #[inline]
    fn live_index(&self, id: TaskId) -> usize {
        id.index() - self.task_base
    }

    /// The live record of `id` (panics if retired or out of range).
    #[inline]
    fn task_ref(&self, id: TaskId) -> &Task {
        &self.tasks[id.index() - self.task_base]
    }

    /// Mutable live record of `id` (panics if retired or out of range).
    #[inline]
    fn task_mut(&mut self, id: TaskId) -> &mut Task {
        let i = self.live_index(id);
        &mut self.tasks[i]
    }

    /// Read access to a task's kernel record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or was retired.
    pub fn task(&self, id: TaskId) -> &Task {
        self.task_ref(id)
    }

    /// What `core` is doing right now.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_state(&self, core: CoreId) -> CoreState {
        self.cores[core.index()].state
    }

    /// All cores currently idle, in ascending id order.
    ///
    /// Backed by an incrementally maintained bitset, so this is
    /// allocation-free and O(idle cores) rather than O(all cores).
    pub fn idle_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.idle.iter()
    }

    /// Number of currently idle cores (O(1)).
    pub fn num_idle_cores(&self) -> usize {
        self.idle.len()
    }

    /// The lowest-numbered idle core, if any (one bit scan). The driver's
    /// allocation- and buffer-free path for the common "exactly one core
    /// just went idle" sweep.
    pub fn first_idle_core(&self) -> Option<CoreId> {
        self.idle.first()
    }

    /// Appends the idle cores to `buf` in ascending id order without
    /// allocating (the snapshot the simulation driver sweeps over).
    pub fn fill_idle_cores(&self, buf: &mut Vec<CoreId>) {
        self.idle.fill(buf);
    }

    /// The task running on `core` and the length of its current run
    /// segment, if any. O(1): a direct core-record lookup.
    pub fn running_on(&self, core: CoreId) -> Option<(TaskId, SimDuration)> {
        let c = &self.cores[core.index()];
        match c.state {
            CoreState::Running(t) => Some((t, self.now.saturating_since(c.work_start))),
            _ => None,
        }
    }

    /// The core `task` currently occupies, if it is running. O(1) via the
    /// task→core back-pointer (the inverse of [`Machine::running_on`]).
    pub fn core_of(&self, task: TaskId) -> Option<CoreId> {
        self.task_ref(task).on_core
    }

    /// Total observed on-CPU time of a task including its current run
    /// segment. This is what the hybrid scheduler compares against the FIFO
    /// time limit (§IV-A: "checks if the runtime of tasks on these cores
    /// exceeds the time limit").
    ///
    /// O(1): uses the task→core back-pointer instead of scanning cores.
    pub fn observed_runtime(&self, id: TaskId) -> SimDuration {
        let t = self.task_ref(id);
        let running_extra = match t.on_core {
            Some(core) => self
                .now
                .saturating_since(self.cores[core.index()].work_start),
            None => SimDuration::ZERO,
        };
        t.cpu_time() + running_extra
    }

    /// Kernel events processed so far, stale-generation events included
    /// (the denominator of the bench harness's events/sec throughput).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Per-core statistics.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_stats(&self, core: CoreId) -> CoreStats {
        let c = &self.cores[core.index()];
        CoreStats {
            preemptions: c.preemptions,
            ctx_switches: c.ctx_switches,
            busy: self.util.total_busy(core.index()),
        }
    }

    /// The utilization ledger (busy time per core per bucket).
    pub fn utilization(&self) -> &UtilizationLedger {
        &self.util
    }

    /// The kernel→agent message log (empty unless
    /// [`MachineConfig::log_messages`] is set).
    pub fn messages(&self) -> &[(SimTime, KernelMessage)] {
        &self.messages
    }

    /// Moves the kernel message log out of the machine (used by the slim
    /// report path, which drops the machine itself).
    pub(crate) fn take_messages(&mut self) -> Vec<(SimTime, KernelMessage)> {
        std::mem::take(&mut self.messages)
    }

    /// Consumes the machine, keeping only the live task records (the slim
    /// report path: everything else — event arena, arrival calendar,
    /// utilization ledger — is dropped here). Retired tasks are gone;
    /// batch runs never retire, so this is all tasks there.
    pub(crate) fn into_tasks(self) -> Vec<Task> {
        Vec::from(self.tasks)
    }

    /// Snapshot of all live task records.
    ///
    /// # Panics
    ///
    /// Panics if tasks were retired and later feeds wrapped the deque —
    /// streaming consumers drain via [`Machine::retire_finished`] instead
    /// of snapshotting.
    pub fn tasks(&self) -> &[Task] {
        let (head, tail) = self.tasks.as_slices();
        assert!(
            tail.is_empty(),
            "task records are non-contiguous after retirement; drain via retire_finished"
        );
        head
    }

    // ---- streaming feed -------------------------------------------------

    /// Appends more task specs to a machine mid-run (the chunked cluster
    /// feed). Ids continue densely after every task seen so far, and each
    /// spec's arrival is scheduled exactly as if it had been present at
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if the specs are not in arrival order, or arrive before the
    /// latest already-queued arrival or the machine's current time — the
    /// streamed feed must be a time-ordered continuation (chunk streams
    /// guarantee this; [`Machine::new`] sorts, this method cannot re-sort
    /// what was already consumed).
    pub fn push_specs<'s>(&mut self, specs: impl Into<Cow<'s, [TaskSpec]>>) {
        let mut floor = self
            .arrivals
            .back()
            .map_or(SimTime::ZERO, |&(at, _)| at)
            .max(self.now);
        match specs.into() {
            Cow::Owned(specs) => {
                for s in specs {
                    self.push_spec(s, &mut floor);
                }
            }
            Cow::Borrowed(specs) => {
                for s in specs {
                    self.push_spec(s.clone(), &mut floor);
                }
            }
        }
    }

    fn push_spec(&mut self, spec: TaskSpec, floor: &mut SimTime) {
        let at = spec.arrival;
        assert!(
            at >= *floor,
            "streamed specs must continue in arrival order ({at} < {floor})"
        );
        *floor = at;
        let id = TaskId((self.task_base + self.tasks.len()) as u32);
        self.tasks.push_back(Task::new(spec));
        if self.arrivals.is_empty() {
            self.next_arrival_at = at;
        }
        self.arrivals.push_back((at, id));
    }

    /// Pops finished tasks off the front of the id space, handing each
    /// record to `sink` in task-id order; returns how many were retired.
    /// Stops at the first unfinished task, so in-flight records stay
    /// addressable. This is what keeps streaming runs O(in-flight): after
    /// each chunk the caller folds the drained records into accumulators
    /// and the machine forgets them.
    pub fn retire_finished(&mut self, mut sink: impl FnMut(Task)) -> usize {
        let mut retired = 0;
        while let Some(front) = self.tasks.front() {
            if !matches!(front.state, TaskState::Finished | TaskState::Cancelled) {
                break;
            }
            let task = self.tasks.pop_front().expect("front just observed");
            self.task_base += 1;
            self.finished -= 1;
            retired += 1;
            sink(task);
        }
        retired
    }

    /// The instant of the next pending kernel event (arrival or heap), or
    /// `None` when nothing is scheduled. Streaming drivers use this to run
    /// up to a chunk horizon without consuming events beyond it.
    pub fn next_event_at(&self) -> Option<SimTime> {
        let heap = self.events.peek_time();
        if self.arrivals.is_empty() {
            heap
        } else {
            Some(match heap {
                Some(h) => self.next_arrival_at.min(h),
                None => self.next_arrival_at,
            })
        }
    }

    // ---- scheduling verbs (the agent ABI) -----------------------------

    /// Commits `task` to run on `core`, optionally bounded by a time slice.
    ///
    /// With `slice = None` the task runs to completion (FIFO-style). With
    /// `Some(s)`, a [`PolicyCall::SliceExpired`] fires after `s` of real
    /// progress unless the task finishes first.
    ///
    /// A context switch is charged unless `task` was also the previous
    /// occupant of this core (warm resume). A preempted task resuming on a
    /// cold core additionally pays the
    /// [`restore_penalty`](CostModel::restore_penalty) as extra work.
    ///
    /// # Errors
    ///
    /// [`SchedError::CoreBusy`] if `core` is not idle,
    /// [`SchedError::NotRunnable`] if `task` is running or finished, and
    /// the `NoSuch*` variants for bad ids.
    pub fn dispatch(
        &mut self,
        core: CoreId,
        task: TaskId,
        slice: Option<SimDuration>,
    ) -> Result<(), SchedError> {
        if core.index() >= self.cores.len() {
            return Err(SchedError::NoSuchCore(core));
        }
        if task.index() < self.task_base || task.index() - self.task_base >= self.tasks.len() {
            // Below task_base: a retired (hence finished) task — gone.
            return Err(SchedError::NoSuchTask(task));
        }
        if self.cores[core.index()].state != CoreState::Idle {
            return Err(SchedError::CoreBusy(core));
        }
        let state = self.task_ref(task).state;
        if !matches!(state, TaskState::Queued | TaskState::Preempted) {
            return Err(SchedError::NotRunnable(task));
        }

        let warm = self.cores[core.index()].last_task == Some(task);
        let switch_cost = if warm {
            SimDuration::ZERO
        } else {
            self.cfg.cost.ctx_switch
        };
        if state == TaskState::Preempted && !warm {
            // Cold resume: pay the cache/TLB restore penalty as extra work.
            let penalty = self.cfg.cost.restore_penalty;
            self.task_mut(task).remaining += penalty;
        }

        let c = &mut self.cores[core.index()];
        c.state = CoreState::Running(task);
        c.generation += 1;
        c.busy_since = Some(self.now);
        c.work_start = self.now + switch_cost;
        c.last_task = Some(task);
        if !warm {
            c.ctx_switches += 1;
        }
        let generation = c.generation;
        self.idle.remove(core);

        let now = self.now;
        let t = self.task_mut(task);
        t.state = TaskState::Running;
        t.on_core = Some(core);
        if t.first_run.is_none() {
            t.first_run = Some(now);
        }

        let remaining = t.remaining;
        let work_start = now + switch_cost;
        match slice {
            Some(s) if s < remaining => {
                self.events
                    .schedule_untracked(work_start + s, Event::SliceExpire { core, generation });
            }
            _ => {
                self.events.schedule_untracked(
                    work_start + remaining,
                    Event::Complete { core, generation },
                );
            }
        }
        // A task dispatched past its deadline is killed on the spot: the
        // cancel event that fired while it was queued was a no-op (the
        // policy still owned it), so re-arm it for this very instant — it
        // fires before any work happens, and the policy sees an ordinary
        // `TaskFinished`.
        if let Some(deadline) = self.task_ref(task).spec().deadline {
            if deadline <= now {
                self.events.schedule_untracked(now, Event::Cancel(task));
            }
        }
        self.log(KernelMessage::Dispatch { task, core, slice });
        Ok(())
    }

    /// Takes the running task off `core` (explicit policy preemption, e.g.
    /// the hybrid scheduler's time-limit check or core rightsizing).
    ///
    /// The task moves to `Preempted`; the policy owns re-queueing it.
    /// Returns the preempted task id.
    ///
    /// # Errors
    ///
    /// [`SchedError::NothingRunning`] if no task occupies `core`.
    pub fn preempt(&mut self, core: CoreId) -> Result<TaskId, SchedError> {
        if core.index() >= self.cores.len() {
            return Err(SchedError::NoSuchCore(core));
        }
        let task = match self.cores[core.index()].state {
            CoreState::Running(t) => t,
            _ => return Err(SchedError::NothingRunning(core)),
        };
        self.stop_running(core, task, false);
        self.log(KernelMessage::TaskPreempt {
            task,
            core,
            by_interference: false,
        });
        Ok(task)
    }

    // ---- engine ---------------------------------------------------------

    /// Advances the simulation by one kernel event.
    ///
    /// Returns the policy notification to deliver, or `None` when every
    /// task has finished.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when the event queue drains with unfinished
    /// tasks; [`SimError::Stalled`] when no task completes for
    /// [`MachineConfig::stall_timeout`] of virtual time.
    pub fn advance(&mut self) -> Result<Option<PolicyCall>, SimError> {
        if self.finished == self.tasks.len() {
            return Ok(None);
        }
        // Merge the static arrival calendar with the dynamic event heap;
        // at equal instants the arrival fires first (it would have held
        // the smaller insertion sequence in a unified heap).
        let heap_t = self.events.peek_time().unwrap_or(SimTime::MAX);
        let (at, ev) = if !self.arrivals.is_empty() && self.next_arrival_at <= heap_t {
            let (at, task) = self.arrivals.pop_front().expect("checked non-empty");
            self.next_arrival_at = self.arrivals.front().map_or(SimTime::MAX, |&(t, _)| t);
            (at, Event::Arrival(task))
        } else if let Some(popped) = self.events.pop() {
            popped
        } else {
            return Err(SimError::Deadlock {
                unfinished: self.tasks.len() - self.finished,
            });
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        if self.now.saturating_since(self.last_progress) > self.cfg.stall_timeout {
            return Err(SimError::Stalled {
                at: self.now,
                unfinished: self.tasks.len() - self.finished,
            });
        }
        let call = match ev {
            Event::Arrival(task) => {
                self.arrived += 1;
                let in_flight = self.arrived - (self.task_base + self.finished) as u64;
                if in_flight > self.max_in_flight {
                    self.max_in_flight = in_flight;
                }
                if let Some(deadline) = self.task_ref(task).spec().deadline {
                    self.events
                        .schedule_untracked(deadline.max(self.now), Event::Cancel(task));
                }
                self.log(KernelMessage::TaskNew { task });
                PolicyCall::TaskNew(task)
            }
            Event::Complete { core, generation } => {
                if self.cores[core.index()].generation != generation {
                    PolicyCall::Internal
                } else {
                    let task = match self.cores[core.index()].state {
                        CoreState::Running(t) => t,
                        _ => unreachable!("live completion on non-running core"),
                    };
                    let io_wait = self.task_ref(task).spec().io_wait;
                    if io_wait.is_zero() {
                        self.finish_running(core, task);
                        PolicyCall::TaskFinished(task, core)
                    } else {
                        // CPU work done; the function now waits off-CPU
                        // for an external call. The core is released (the
                        // idle sweep can refill it) but the task is billed
                        // until the wait returns.
                        self.release_to_io(core, task);
                        self.events
                            .schedule_untracked(self.now + io_wait, Event::IoComplete(task));
                        PolicyCall::Internal
                    }
                }
            }
            Event::IoComplete(task) => {
                if task.index() < self.task_base || self.task_ref(task).state != TaskState::Blocked
                {
                    // The wait's owner was cancelled mid-wait (and possibly
                    // retired since): the external call's return is void.
                    PolicyCall::Internal
                } else {
                    let now = self.now;
                    let t = self.task_mut(task);
                    t.completion = Some(now);
                    t.state = TaskState::Finished;
                    self.finished += 1;
                    self.last_progress = self.now;
                    self.log(KernelMessage::TaskDead {
                        task,
                        core: CoreId(0),
                    });
                    PolicyCall::TaskFinished(task, CoreId(0))
                }
            }
            Event::Cancel(task) => {
                if task.index() < self.task_base {
                    // Retired: already terminal and gone.
                    PolicyCall::Internal
                } else {
                    match self.task_ref(task).state {
                        TaskState::Finished | TaskState::Cancelled => PolicyCall::Internal,
                        TaskState::Running => {
                            let core = self
                                .task_ref(task)
                                .on_core
                                .expect("running task has a core");
                            self.cancel_running(core, task);
                            PolicyCall::TaskFinished(task, core)
                        }
                        TaskState::Blocked => {
                            self.cancel_off_core(task);
                            PolicyCall::TaskFinished(task, CoreId(0))
                        }
                        // Not on a core yet: the policy still owns the task
                        // in its own queues, so cancelling here would
                        // strand policy state. `dispatch` re-arms the
                        // cancel the moment the policy runs it, killing it
                        // with zero progress.
                        TaskState::Queued | TaskState::Preempted => PolicyCall::Internal,
                    }
                }
            }
            Event::SliceExpire { core, generation } => {
                if self.cores[core.index()].generation != generation {
                    PolicyCall::Internal
                } else {
                    let task = match self.cores[core.index()].state {
                        CoreState::Running(t) => t,
                        _ => unreachable!("live slice expiry on non-running core"),
                    };
                    self.stop_running(core, task, false);
                    self.log(KernelMessage::SliceExpired { task, core });
                    PolicyCall::SliceExpired(task, core)
                }
            }
            Event::InterferenceStart(core) => {
                let preempted = match self.cores[core.index()].state {
                    CoreState::Running(t) => {
                        self.stop_running(core, t, true);
                        self.log(KernelMessage::TaskPreempt {
                            task: t,
                            core,
                            by_interference: true,
                        });
                        Some(t)
                    }
                    CoreState::Interference => None, // already occupied; skip episode
                    CoreState::Idle => None,
                };
                if self.cores[core.index()].state == CoreState::Idle {
                    let icfg = self
                        .cfg
                        .interference
                        .expect("interference event without config");
                    self.idle.remove(core);
                    let c = &mut self.cores[core.index()];
                    c.state = CoreState::Interference;
                    c.generation += 1;
                    c.busy_since = Some(self.now);
                    c.last_task = None; // the intruder pollutes the cache
                    let generation = c.generation;
                    let dur = self.rng.jitter(icfg.duration, 0.5);
                    self.events.schedule_untracked(
                        self.now + dur,
                        Event::InterferenceEnd { core, generation },
                    );
                    self.log(KernelMessage::InterferenceStart { core });
                }
                match preempted {
                    Some(t) => PolicyCall::InterferencePreempt(t, core),
                    None => PolicyCall::Internal,
                }
            }
            Event::InterferenceEnd { core, generation } => {
                if self.cores[core.index()].generation == generation {
                    let c = &mut self.cores[core.index()];
                    if let Some(since) = c.busy_since.take() {
                        let now = self.now;
                        self.util.record_busy(core.index(), since, now);
                    }
                    c.state = CoreState::Idle;
                    self.mark_idle(core);
                    self.log(KernelMessage::InterferenceEnd { core });
                }
                // Schedule the next episode regardless.
                let icfg = self
                    .cfg
                    .interference
                    .expect("interference event without config");
                let gap = self.rng.exponential(icfg.mean_interval.as_secs_f64());
                let gap = storm_scaled(&self.cfg.storms, self.now, gap);
                self.events.schedule_untracked(
                    self.now + SimDuration::from_secs_f64(gap),
                    Event::InterferenceStart(core),
                );
                PolicyCall::Internal
            }
            Event::Tick => {
                let every = self.tick_every.expect("tick event without interval");
                self.events
                    .schedule_untracked(self.now + every, Event::Tick);
                PolicyCall::Tick
            }
        };
        Ok(Some(call))
    }

    /// Ends the current run segment of `task` on `core` without finishing
    /// it: accounts progress, bumps preemption counters, frees the core.
    fn stop_running(&mut self, core: CoreId, task: TaskId, by_interference: bool) {
        let now = self.now;
        let (ran, since) = {
            let c = &mut self.cores[core.index()];
            let ran = now.saturating_since(c.work_start);
            let since = c
                .busy_since
                .take()
                .expect("running core without busy_since");
            c.state = CoreState::Idle;
            c.generation += 1; // invalidate in-flight Complete/SliceExpire
            c.preemptions += 1;
            (ran, since)
        };
        self.mark_idle(core);
        self.util.record_busy(core.index(), since, now);
        let t = self.task_mut(task);
        let ran = ran.min(t.remaining);
        t.remaining -= ran;
        t.cpu_time += ran;
        t.preemptions += 1;
        t.state = TaskState::Preempted;
        t.on_core = None;
        let _ = by_interference;
    }

    /// Finishes the CPU work of `task` on `core` and moves it to the
    /// off-CPU blocked state (external call in flight).
    fn release_to_io(&mut self, core: CoreId, task: TaskId) {
        let now = self.now;
        let since = {
            let c = &mut self.cores[core.index()];
            let since = c
                .busy_since
                .take()
                .expect("running core without busy_since");
            c.state = CoreState::Idle;
            c.generation += 1;
            since
        };
        self.mark_idle(core);
        self.util.record_busy(core.index(), since, now);
        let t = self.task_mut(task);
        t.cpu_time += t.remaining;
        t.remaining = SimDuration::ZERO;
        t.state = TaskState::Blocked;
        t.on_core = None;
    }

    /// Completes `task` on `core`.
    fn finish_running(&mut self, core: CoreId, task: TaskId) {
        let now = self.now;
        let since = {
            let c = &mut self.cores[core.index()];
            let since = c
                .busy_since
                .take()
                .expect("running core without busy_since");
            c.state = CoreState::Idle;
            c.generation += 1;
            since
        };
        self.mark_idle(core);
        self.util.record_busy(core.index(), since, now);
        let t = self.task_mut(task);
        t.cpu_time += t.remaining;
        t.remaining = SimDuration::ZERO;
        t.completion = Some(now);
        t.state = TaskState::Finished;
        t.on_core = None;
        self.finished += 1;
        self.last_progress = now;
        self.log(KernelMessage::TaskDead { task, core });
    }

    /// Cancels `task` mid-run on `core`: accounts the progress it made,
    /// frees the core (invalidating in-flight Complete/SliceExpire via the
    /// generation bump), and moves the task to the terminal `Cancelled`
    /// state with no completion instant.
    fn cancel_running(&mut self, core: CoreId, task: TaskId) {
        let now = self.now;
        let (ran, since) = {
            let c = &mut self.cores[core.index()];
            let ran = now.saturating_since(c.work_start);
            let since = c
                .busy_since
                .take()
                .expect("running core without busy_since");
            c.state = CoreState::Idle;
            c.generation += 1;
            (ran, since)
        };
        self.mark_idle(core);
        self.util.record_busy(core.index(), since, now);
        let t = self.task_mut(task);
        let ran = ran.min(t.remaining);
        t.remaining -= ran;
        t.cpu_time += ran;
        t.state = TaskState::Cancelled;
        t.on_core = None;
        self.seal_cancel(task, core);
    }

    /// Cancels a task that occupies no core (blocked on an external call).
    fn cancel_off_core(&mut self, task: TaskId) {
        self.task_mut(task).state = TaskState::Cancelled;
        self.seal_cancel(task, CoreId(0));
    }

    /// Terminal bookkeeping shared by every cancellation path.
    fn seal_cancel(&mut self, task: TaskId, core: CoreId) {
        self.finished += 1;
        self.cancelled_total += 1;
        self.last_progress = self.now;
        self.log(KernelMessage::TaskDead { task, core });
    }

    /// Records a busy→idle transition: updates the idle set and bumps the
    /// change counter the driver's batched sweep keys off.
    #[inline]
    fn mark_idle(&mut self, core: CoreId) {
        self.idle.insert(core);
        self.idle_transitions += 1;
    }

    /// Monotonic count of busy→idle transitions (the driver's batching
    /// signal: unchanged counter ⇒ no core became idle ⇒ no sweep needed).
    pub(crate) fn idle_transitions(&self) -> u64 {
        self.idle_transitions
    }

    /// Appends to the kernel message log when enabled. Inlined so the
    /// flag check sinks the message construction off the hot path; the
    /// push itself is the cold side (logging is a test/debug feature).
    #[inline]
    fn log(&mut self, msg: KernelMessage) {
        if self.cfg.log_messages {
            self.log_push(msg);
        }
    }

    #[cold]
    fn log_push(&mut self, msg: KernelMessage) {
        self.messages.push((self.now, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_task_machine(work_ms: u64) -> Machine {
        let cfg = MachineConfig::new(1)
            .with_cost(CostModel::free())
            .with_message_log();
        Machine::new(
            cfg,
            vec![TaskSpec::function(
                SimTime::ZERO,
                SimDuration::from_millis(work_ms),
                128,
            )],
        )
    }

    #[test]
    fn storm_scaling_passes_draws_through_outside_windows() {
        let w = StormWindow {
            start: SimTime::from_millis(1_000),
            end: SimTime::from_millis(2_000),
            intensity: 4.0,
        };
        let g = 0.123_456_789_f64;
        // No storms and out-of-window instants return the draw bitwise
        // untouched — this is what keeps empty plans a no-op.
        assert_eq!(
            storm_scaled(&[], SimTime::from_millis(1_500), g).to_bits(),
            g.to_bits()
        );
        assert_eq!(
            storm_scaled(&[w], SimTime::from_millis(999), g).to_bits(),
            g.to_bits()
        );
        assert_eq!(
            storm_scaled(&[w], SimTime::from_millis(2_000), g).to_bits(),
            g.to_bits()
        );
        // Inside the window the gap shrinks by the intensity.
        assert_eq!(
            storm_scaled(&[w], SimTime::from_millis(1_000), g).to_bits(),
            (g / 4.0).to_bits()
        );
        // Overlapping windows: first match wins.
        let calm = StormWindow {
            intensity: 0.5,
            ..w
        };
        assert_eq!(
            storm_scaled(&[calm, w], SimTime::from_millis(1_500), g).to_bits(),
            (g / 0.5).to_bits()
        );
    }

    /// Drives a one-core machine through a 60 s task, re-dispatching after
    /// every preemption, and counts interference episodes.
    fn interference_episodes(storms: Vec<StormWindow>) -> usize {
        let cfg = MachineConfig::new(1)
            .with_cost(CostModel::free())
            .with_interference(InterferenceConfig {
                mean_interval: SimDuration::from_secs(5),
                duration: SimDuration::from_millis(1),
            })
            .with_storms(storms)
            .with_message_log();
        let mut m = Machine::new(
            cfg,
            vec![TaskSpec::function(
                SimTime::ZERO,
                SimDuration::from_secs(60),
                128,
            )],
        );
        while m.task(TaskId(0)).state() != TaskState::Finished {
            m.advance().unwrap().expect("task still unfinished");
            let runnable = matches!(
                m.task(TaskId(0)).state(),
                TaskState::Queued | TaskState::Preempted
            );
            if runnable && m.core_state(CoreId(0)) == CoreState::Idle {
                m.dispatch(CoreId(0), TaskId(0), None).unwrap();
            }
        }
        m.messages()
            .iter()
            .filter(|(_, msg)| matches!(msg, KernelMessage::InterferenceStart { .. }))
            .count()
    }

    #[test]
    fn storm_windows_concentrate_interference() {
        let calm = interference_episodes(vec![]);
        let stormy = interference_episodes(vec![StormWindow {
            start: SimTime::ZERO,
            end: SimTime::from_millis(120_000),
            intensity: 50.0,
        }]);
        assert!(
            stormy > 2 * calm,
            "a 50x storm over the whole run must multiply episodes ({stormy} vs {calm})"
        );
    }

    #[test]
    fn single_task_runs_to_completion() {
        let mut m = one_task_machine(100);
        // Arrival.
        assert_eq!(m.advance().unwrap(), Some(PolicyCall::TaskNew(TaskId(0))));
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // Completion.
        assert_eq!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(0), CoreId(0)))
        );
        let t = m.task(TaskId(0));
        assert_eq!(t.state(), TaskState::Finished);
        assert_eq!(t.execution_time(), Some(SimDuration::from_millis(100)));
        assert_eq!(t.response_time(), Some(SimDuration::ZERO));
        assert_eq!(m.advance().unwrap(), None, "drained");
    }

    #[test]
    fn slice_expiry_preempts_and_accounts_progress() {
        let mut m = one_task_machine(100);
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), Some(SimDuration::from_millis(30)))
            .unwrap();
        assert_eq!(
            m.advance().unwrap(),
            Some(PolicyCall::SliceExpired(TaskId(0), CoreId(0)))
        );
        let t = m.task(TaskId(0));
        assert_eq!(t.state(), TaskState::Preempted);
        assert_eq!(t.remaining(), SimDuration::from_millis(70));
        assert_eq!(t.preemptions(), 1);
        assert_eq!(m.core_state(CoreId(0)), CoreState::Idle);
    }

    #[test]
    fn warm_resume_charges_no_switch_or_penalty() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::from_micros(1_000, 5_000));
        let mut m = Machine::new(
            cfg,
            vec![TaskSpec::function(
                SimTime::ZERO,
                SimDuration::from_millis(100),
                128,
            )],
        );
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), Some(SimDuration::from_millis(30)))
            .unwrap();
        m.advance().unwrap(); // slice expiry at 1ms (switch) + 30ms
        assert_eq!(m.now(), SimTime::from_micros(31_000));
        assert_eq!(m.task(TaskId(0)).remaining(), SimDuration::from_millis(70));
        // Re-dispatch the same task on the same core: warm, no extra costs.
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap();
        assert_eq!(m.now(), SimTime::from_micros(31_000 + 70_000));
        let stats = m.core_stats(CoreId(0));
        assert_eq!(stats.ctx_switches, 1, "only the initial switch");
    }

    #[test]
    fn cold_resume_pays_restore_penalty() {
        let cfg = MachineConfig::new(2).with_cost(CostModel::from_micros(0, 5_000));
        let mut m = Machine::new(
            cfg,
            vec![TaskSpec::function(
                SimTime::ZERO,
                SimDuration::from_millis(100),
                128,
            )],
        );
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), Some(SimDuration::from_millis(40)))
            .unwrap();
        m.advance().unwrap();
        // Resume on a different core: remaining 60ms + 5ms penalty.
        m.dispatch(CoreId(1), TaskId(0), None).unwrap();
        m.advance().unwrap();
        let t = m.task(TaskId(0));
        assert_eq!(t.completion(), Some(SimTime::from_millis(105)));
        assert_eq!(t.cpu_time(), SimDuration::from_millis(105));
    }

    #[test]
    fn explicit_preempt_mid_run() {
        let mut m = one_task_machine(100);
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // No event has fired yet, so now == 0; preempting immediately
        // yields zero progress.
        let got = m.preempt(CoreId(0)).unwrap();
        assert_eq!(got, TaskId(0));
        assert_eq!(m.task(TaskId(0)).remaining(), SimDuration::from_millis(100));
        assert_eq!(m.task(TaskId(0)).state(), TaskState::Preempted);
        // The stale completion event is ignored.
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        loop {
            match m.advance().unwrap() {
                Some(PolicyCall::TaskFinished(..)) => break,
                Some(_) => continue,
                None => panic!("ended without completion"),
            }
        }
        assert_eq!(m.task(TaskId(0)).state(), TaskState::Finished);
    }

    #[test]
    fn dispatch_errors() {
        let mut m = one_task_machine(10);
        m.advance().unwrap();
        assert_eq!(
            m.dispatch(CoreId(9), TaskId(0), None),
            Err(SchedError::NoSuchCore(CoreId(9)))
        );
        assert_eq!(
            m.dispatch(CoreId(0), TaskId(9), None),
            Err(SchedError::NoSuchTask(TaskId(9)))
        );
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        assert_eq!(
            m.dispatch(CoreId(0), TaskId(0), None),
            Err(SchedError::CoreBusy(CoreId(0)))
        );
        assert_eq!(m.preempt(CoreId(9)), Err(SchedError::NoSuchCore(CoreId(9))));
        m.advance().unwrap(); // completes
        assert_eq!(
            m.dispatch(CoreId(0), TaskId(0), None),
            Err(SchedError::NotRunnable(TaskId(0)))
        );
        assert_eq!(
            m.preempt(CoreId(0)),
            Err(SchedError::NothingRunning(CoreId(0)))
        );
    }

    #[test]
    fn deadlock_detected_when_policy_strands_tasks() {
        let mut m = one_task_machine(10);
        m.advance().unwrap(); // arrival, but we never dispatch
        assert_eq!(m.advance(), Err(SimError::Deadlock { unfinished: 1 }));
    }

    #[test]
    fn message_log_records_protocol() {
        let mut m = one_task_machine(10);
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap();
        let kinds: Vec<&KernelMessage> = m.messages().iter().map(|(_, k)| k).collect();
        assert!(matches!(kinds[0], KernelMessage::TaskNew { .. }));
        assert!(matches!(kinds[1], KernelMessage::Dispatch { .. }));
        assert!(matches!(kinds[2], KernelMessage::TaskDead { .. }));
    }

    #[test]
    fn utilization_recorded_for_busy_interval() {
        let mut m = one_task_machine(500);
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap();
        let u = m.utilization().bucket_utilization(0, 0);
        assert!((u - 0.5).abs() < 1e-9, "utilization was {u}");
    }

    #[test]
    fn io_wait_bills_but_frees_the_core() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(1), 128)
                .with_io_wait(SimDuration::from_secs(60)),
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(5), 128),
        ];
        let mut m = Machine::new(cfg, specs);
        // Arrivals.
        assert!(matches!(m.advance().unwrap(), Some(PolicyCall::TaskNew(_))));
        assert!(matches!(m.advance().unwrap(), Some(PolicyCall::TaskNew(_))));
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // CPU work of task 0 done at 1 ms: core freed, task blocked.
        assert!(matches!(m.advance().unwrap(), Some(PolicyCall::Internal)));
        assert_eq!(m.core_state(CoreId(0)), CoreState::Idle);
        assert_eq!(m.task(TaskId(0)).state(), TaskState::Blocked);
        // The second task runs to completion while the first waits.
        m.dispatch(CoreId(0), TaskId(1), None).unwrap();
        assert!(matches!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(1), _))
        ));
        // The waiting task finishes at 60.001 s.
        assert!(matches!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(0), _))
        ));
        let t = m.task(TaskId(0));
        assert_eq!(t.completion(), Some(SimTime::from_micros(60_001_000)));
        // Billing: execution (wall clock) is the full minute; CPU is 1 ms —
        // the paper's §I AWS Lambda example.
        assert_eq!(
            t.execution_time(),
            Some(SimDuration::from_micros(60_001_000))
        );
        assert_eq!(t.cpu_time(), SimDuration::from_millis(1));
    }

    #[test]
    fn streamed_specs_extend_a_paused_machine() {
        let mut m = one_task_machine(10);
        m.advance().unwrap(); // arrival
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap(); // finish at 10 ms
        assert_eq!(m.advance().unwrap(), None, "all fed tasks finished");
        assert_eq!(m.next_event_at(), None);
        m.push_specs(vec![TaskSpec::function(
            SimTime::from_millis(50),
            SimDuration::from_millis(5),
            128,
        )]);
        assert_eq!(m.next_event_at(), Some(SimTime::from_millis(50)));
        assert_eq!(m.num_tasks(), 2);
        // Ids continue densely after the already-fed task.
        assert_eq!(m.advance().unwrap(), Some(PolicyCall::TaskNew(TaskId(1))));
        m.dispatch(CoreId(0), TaskId(1), None).unwrap();
        assert_eq!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(1), CoreId(0)))
        );
        assert_eq!(
            m.task(TaskId(1)).completion(),
            Some(SimTime::from_millis(55))
        );
    }

    #[test]
    fn retire_finished_pops_only_the_finished_prefix() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128),
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128),
        ];
        let mut m = Machine::new(cfg, specs);
        m.advance().unwrap(); // T0 arrival
        m.advance().unwrap(); // T1 arrival
        assert_eq!(m.retire_finished(|_| ()), 0, "nothing finished yet");
        // Finish T1 first: the unfinished T0 pins the retirement frontier.
        m.dispatch(CoreId(0), TaskId(1), None).unwrap();
        m.advance().unwrap();
        assert_eq!(m.retire_finished(|_| ()), 0, "T0 blocks the prefix");
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap();
        let mut drained = Vec::new();
        assert_eq!(m.retire_finished(|t| drained.push(t)), 2);
        // Drained in task-id order, not completion order.
        assert_eq!(drained[0].completion(), Some(SimTime::from_millis(20)));
        assert_eq!(drained[1].completion(), Some(SimTime::from_millis(10)));
        // Totals still count the retired tasks; their records are gone.
        assert_eq!(m.num_tasks(), 2);
        assert_eq!(m.num_finished(), 2);
        assert_eq!(m.retire_finished(|_| ()), 0);
        assert_eq!(
            m.dispatch(CoreId(0), TaskId(0), None),
            Err(SchedError::NoSuchTask(TaskId(0)))
        );
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn push_specs_rejects_backdated_arrivals() {
        let mut m = one_task_machine(10);
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap(); // now = 10 ms
        m.push_specs(vec![TaskSpec::function(
            SimTime::from_millis(5),
            SimDuration::from_millis(1),
            128,
        )]);
    }

    #[test]
    fn deadline_cancels_running_task() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(100), 128)
                .with_deadline(SimTime::from_millis(30)),
        ];
        let mut m = Machine::new(cfg, specs);
        m.advance().unwrap(); // arrival (schedules the cancel)
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // The cancel fires at 30 ms, before the 100 ms completion.
        assert_eq!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(0), CoreId(0)))
        );
        assert_eq!(m.now(), SimTime::from_millis(30));
        let t = m.task(TaskId(0));
        assert!(t.is_cancelled());
        assert_eq!(t.completion(), None, "cancelled tasks are unbilled");
        assert_eq!(
            t.cpu_time(),
            SimDuration::from_millis(30),
            "progress accounted"
        );
        assert_eq!(m.core_state(CoreId(0)), CoreState::Idle);
        assert_eq!(m.num_cancelled(), 1);
        // Terminal: the machine pauses; the stale completion never fires live.
        assert_eq!(m.advance().unwrap(), None);
    }

    #[test]
    fn past_deadline_dispatch_cancels_with_zero_progress() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(100), 128),
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(100), 128)
                .with_deadline(SimTime::from_millis(50)),
        ];
        let mut m = Machine::new(cfg, specs);
        m.advance().unwrap(); // T0 arrival
        m.advance().unwrap(); // T1 arrival (cancel armed at 50 ms)
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // T1's cancel fires at 50 ms while it is still queued: a no-op —
        // the policy owns queued tasks.
        assert_eq!(m.advance().unwrap(), Some(PolicyCall::Internal));
        assert_eq!(m.task(TaskId(1)).state(), TaskState::Queued);
        // T0 finishes at 100 ms; dispatching T1 past its deadline re-arms
        // the cancel for this instant and it dies with zero progress.
        assert!(matches!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(0), _))
        ));
        m.dispatch(CoreId(0), TaskId(1), None).unwrap();
        assert_eq!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(1), CoreId(0)))
        );
        assert_eq!(m.now(), SimTime::from_millis(100));
        let t = m.task(TaskId(1));
        assert!(t.is_cancelled());
        assert_eq!(t.cpu_time(), SimDuration::ZERO);
        assert_eq!(m.advance().unwrap(), None);
    }

    #[test]
    fn deadline_cancels_blocked_task_and_voids_io_return() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(1), 128)
                .with_io_wait(SimDuration::from_secs(60))
                .with_deadline(SimTime::from_millis(500)),
        ];
        let mut m = Machine::new(cfg, specs);
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // CPU done at 1 ms, task blocks on the external call.
        assert!(matches!(m.advance().unwrap(), Some(PolicyCall::Internal)));
        assert_eq!(m.task(TaskId(0)).state(), TaskState::Blocked);
        // Cancel fires at 500 ms, long before the 60 s wait returns.
        assert_eq!(
            m.advance().unwrap(),
            Some(PolicyCall::TaskFinished(TaskId(0), CoreId(0)))
        );
        assert_eq!(m.now(), SimTime::from_millis(500));
        assert!(m.task(TaskId(0)).is_cancelled());
        assert_eq!(m.advance().unwrap(), None, "void io return never delivers");
    }

    #[test]
    fn max_in_flight_tracks_peak_backlog() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128),
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(10), 128),
            TaskSpec::function(SimTime::from_millis(100), SimDuration::from_millis(10), 128),
        ];
        let mut m = Machine::new(cfg, specs);
        assert_eq!(m.max_in_flight(), 0);
        m.advance().unwrap();
        m.advance().unwrap();
        assert_eq!(m.max_in_flight(), 2, "two arrived, none finished");
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(1), None).unwrap();
        m.advance().unwrap();
        // The third arrives after both finished: backlog 1, peak stays 2.
        m.advance().unwrap();
        assert_eq!(m.max_in_flight(), 2);
    }

    #[test]
    fn retire_covers_cancelled_prefix() {
        let cfg = MachineConfig::new(1).with_cost(CostModel::free());
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(100), 128)
                .with_deadline(SimTime::from_millis(10)),
            TaskSpec::function(SimTime::ZERO, SimDuration::from_millis(5), 128),
        ];
        let mut m = Machine::new(cfg, specs);
        m.advance().unwrap();
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        m.advance().unwrap(); // cancel at 10 ms
        m.dispatch(CoreId(0), TaskId(1), None).unwrap();
        m.advance().unwrap(); // T1 finishes
        let mut drained = Vec::new();
        assert_eq!(m.retire_finished(|t| drained.push(t)), 2);
        assert!(drained[0].is_cancelled());
        assert_eq!(drained[1].completion(), Some(SimTime::from_millis(15)));
        assert_eq!(m.num_cancelled(), 1, "monotonic across retirement");
    }

    #[test]
    fn interference_occupies_idle_core_and_preempts_running() {
        let icfg = InterferenceConfig {
            mean_interval: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(10),
        };
        let cfg = MachineConfig::new(1)
            .with_cost(CostModel::free())
            .with_interference(icfg)
            .with_seed(7);
        let mut m = Machine::new(
            cfg,
            vec![TaskSpec::function(
                SimTime::ZERO,
                SimDuration::from_secs(1),
                128,
            )],
        );
        m.advance().unwrap();
        m.dispatch(CoreId(0), TaskId(0), None).unwrap();
        // Run until the task gets interference-preempted at least once.
        let mut preempted = false;
        for _ in 0..100 {
            match m.advance().unwrap() {
                Some(PolicyCall::InterferencePreempt(t, c)) => {
                    preempted = true;
                    assert_eq!(t, TaskId(0));
                    assert_eq!(m.core_state(c), CoreState::Interference);
                    break;
                }
                Some(PolicyCall::TaskFinished(..)) | None => break,
                Some(_) => continue,
            }
        }
        assert!(preempted, "task should get interference-preempted");
    }
}
