//! Context-switch cost model.
//!
//! The paper's central claim (Obs. 1/5) is that preemption is not free:
//! each context switch costs direct kernel time and — more importantly —
//! indirect time re-warming caches and TLBs ("costly state saving and
//! restoration" [31]). We model both:
//!
//! * **direct cost** occupies the core between two tasks but is not
//!   attributed to either task's work;
//! * **restore penalty** is added to the *preempted* task's remaining work:
//!   when it next runs it must re-fill its cache footprint.

use faas_simcore::SimDuration;

/// Costs charged by the simulated kernel around preemptions.
///
/// # Examples
///
/// ```
/// use faas_kernel::CostModel;
/// use faas_simcore::SimDuration;
///
/// let model = CostModel::default();
/// assert!(model.restore_penalty > model.ctx_switch);
///
/// let free = CostModel::free();
/// assert!(free.ctx_switch.is_zero() && free.restore_penalty.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Direct kernel time to switch between two tasks on a core.
    /// The core is busy but no task makes progress.
    pub ctx_switch: SimDuration,
    /// Extra work added to a task each time it is preempted, modelling the
    /// cache/TLB state it must rebuild on its next run.
    pub restore_penalty: SimDuration,
}

impl CostModel {
    /// A zero-cost model, useful to isolate purely structural queueing
    /// effects in tests and ablations.
    pub const fn free() -> Self {
        CostModel {
            ctx_switch: SimDuration::ZERO,
            restore_penalty: SimDuration::ZERO,
        }
    }

    /// Creates a model from microsecond values.
    pub const fn from_micros(ctx_switch_us: u64, restore_penalty_us: u64) -> Self {
        CostModel {
            ctx_switch: SimDuration::from_micros(ctx_switch_us),
            restore_penalty: SimDuration::from_micros(restore_penalty_us),
        }
    }
}

impl Default for CostModel {
    /// Defaults calibrated to the common x86 figures the literature cites:
    /// ~5 µs direct switch cost and ~200 µs of indirect cache-refill work
    /// for a memory-resident function footprint.
    fn default() -> Self {
        CostModel::from_micros(5, 200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nonzero() {
        let m = CostModel::default();
        assert_eq!(m.ctx_switch, SimDuration::from_micros(5));
        assert_eq!(m.restore_penalty, SimDuration::from_micros(200));
    }

    #[test]
    fn free_is_zero() {
        let m = CostModel::free();
        assert!(m.ctx_switch.is_zero());
        assert!(m.restore_penalty.is_zero());
    }

    #[test]
    fn from_micros_roundtrip() {
        let m = CostModel::from_micros(7, 300);
        assert_eq!(m.ctx_switch.as_micros(), 7);
        assert_eq!(m.restore_penalty.as_micros(), 300);
    }
}
