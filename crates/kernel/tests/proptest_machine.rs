//! Property tests of the kernel substrate under an adversarial agent: a
//! chaos policy that dispatches arbitrary runnable tasks with arbitrary
//! slices and preempts cores at random. Whatever the agent does, the
//! kernel's accounting must stay consistent and all work must eventually
//! complete.

use faas_kernel::{
    CoreId, CoreState, CostModel, InterferenceConfig, KernelMessage, Machine, MachineConfig,
    Scheduler, Simulation, TaskId, TaskSpec,
};
use faas_simcore::check::{self, Gen};
use faas_simcore::{SimDuration, SimTime};

use faas_simcore::SimDuration as Dur;

/// A deterministic chaos agent driven by an LCG.
struct Chaos {
    runnable: Vec<TaskId>,
    state: u64,
    preempt_bias: bool,
}

impl Chaos {
    fn new(seed: u64, preempt_bias: bool) -> Self {
        Chaos {
            runnable: Vec::new(),
            state: seed | 1,
            preempt_bias,
        }
    }
    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }
}

impl Scheduler for Chaos {
    fn name(&self) -> &str {
        "chaos"
    }
    fn on_task_new(&mut self, _m: &mut Machine, task: TaskId) {
        self.runnable.push(task);
    }
    fn on_slice_expired(&mut self, _m: &mut Machine, task: TaskId, _core: CoreId) {
        self.runnable.push(task);
    }
    fn on_task_finished(&mut self, m: &mut Machine, _task: TaskId, _core: CoreId) {
        // Occasionally preempt some other running core for no reason.
        if self.preempt_bias && self.next().is_multiple_of(3) {
            let cores = m.num_cores();
            let victim = CoreId::from_index((self.next() as usize) % cores);
            if matches!(m.core_state(victim), CoreState::Running(_)) {
                let t = m.preempt(victim).expect("victim was running");
                self.runnable.push(t);
            }
        }
    }
    fn on_core_idle(&mut self, m: &mut Machine, core: CoreId) {
        if self.runnable.is_empty() {
            return;
        }
        let idx = (self.next() as usize) % self.runnable.len();
        let task = self.runnable.swap_remove(idx);
        // Random slice: sometimes none, sometimes tiny, sometimes large.
        let slice = match self.next() % 4 {
            0 => None,
            1 => Some(Dur::from_micros(1 + self.next() % 500)),
            2 => Some(Dur::from_millis(1 + self.next() % 20)),
            _ => Some(Dur::from_secs(10)),
        };
        m.dispatch(core, task, slice)
            .expect("dispatch on idle core");
    }
}

fn arb_specs(g: &mut Gen) -> Vec<TaskSpec> {
    let n = g.usize_in(1, 40);
    (0..n)
        .map(|_| {
            let arr = g.u64_in(0, 2_000);
            let work = g.u64_in(1, 500);
            TaskSpec::function(
                SimTime::from_millis(arr),
                SimDuration::from_millis(work),
                128,
            )
        })
        .collect()
}

/// Whatever the chaos agent does, accounting stays consistent.
#[test]
fn kernel_accounting_survives_chaos() {
    check::run("kernel_accounting_survives_chaos", 64, |g| {
        let specs = arb_specs(g);
        let seed = g.u64_in(0, u64::MAX);
        let cores = g.usize_in(1, 5);
        let preempt_bias = g.boolean();
        let cfg = MachineConfig::new(cores)
            .with_cost(CostModel::from_micros(3, 50))
            .with_message_log();
        let total = specs.len();
        let works: Vec<SimDuration> = specs.iter().map(|s| s.work).collect();
        let report = Simulation::new(cfg, specs, Chaos::new(seed, preempt_bias))
            .run()
            .expect("chaos must not deadlock the kernel");
        assert_eq!(report.tasks.len(), total);
        for (task, work) in report.tasks.iter().zip(&works) {
            assert!(task.completion().is_some());
            // A task consumes at least its nominal work; preemptions only add.
            assert!(task.cpu_time() >= *work);
            let exec = task.execution_time().unwrap();
            assert!(
                exec + SimDuration::from_micros(1) >= task.cpu_time() - (task.cpu_time() - *work),
                "execution wall-clock below pure work"
            );
        }
        // Busy time is bounded by capacity.
        let busy: SimDuration = report.core_stats.iter().map(|s| s.busy).sum();
        let cap = SimDuration::from_micros(report.finished_at.as_micros() * cores as u64);
        assert!(busy <= cap + SimDuration::from_micros(1));
    });
}

/// The kernel message protocol is well-formed under chaos: one
/// TaskNew and one TaskDead per task, dispatches between them.
#[test]
fn message_protocol_is_well_formed() {
    check::run("message_protocol_is_well_formed", 64, |g| {
        let specs = arb_specs(g);
        let seed = g.u64_in(0, u64::MAX);
        let cfg = MachineConfig::new(2).with_message_log();
        let total = specs.len();
        let report = Simulation::new(cfg, specs, Chaos::new(seed, true))
            .run()
            .expect("completes");
        let log = report.machine.messages();
        let mut news = vec![0u32; total];
        let mut deads = vec![0u32; total];
        let mut dispatches = vec![0u32; total];
        for (_, msg) in log {
            match msg {
                KernelMessage::TaskNew { task } => news[task.index()] += 1,
                KernelMessage::TaskDead { task, .. } => deads[task.index()] += 1,
                KernelMessage::Dispatch { task, .. } => dispatches[task.index()] += 1,
                _ => {}
            }
        }
        for i in 0..total {
            assert_eq!(news[i], 1, "exactly one TaskNew");
            assert_eq!(deads[i], 1, "exactly one TaskDead");
            assert!(dispatches[i] >= 1, "ran at least once");
        }
        // Per task: TaskNew precedes first Dispatch precedes TaskDead.
        for i in 0..total {
            let tid = |m: &KernelMessage| m.task().map(|t| t.index() == i).unwrap_or(false);
            let first_new = log
                .iter()
                .position(|(_, m)| matches!(m, KernelMessage::TaskNew { .. }) && tid(m))
                .unwrap();
            let first_dispatch = log
                .iter()
                .position(|(_, m)| matches!(m, KernelMessage::Dispatch { .. }) && tid(m))
                .unwrap();
            let dead = log
                .iter()
                .position(|(_, m)| matches!(m, KernelMessage::TaskDead { .. }) && tid(m))
                .unwrap();
            assert!(first_new < first_dispatch);
            assert!(first_dispatch < dead);
        }
    });
}

/// The incrementally maintained idle-core set always equals the
/// brute-force scan over core states, and the task→core back-pointer
/// (`core_of` / `observed_runtime`) always matches a brute-force search,
/// across randomized dispatch/preempt/finish/interference sequences.
#[test]
fn incremental_idle_set_matches_brute_force() {
    check::run("incremental_idle_set_matches_brute_force", 48, |g| {
        let specs = arb_specs(g);
        let cores = g.usize_in(1, 6);
        let with_interference = g.boolean();
        let seed = g.u64_in(0, u64::MAX);
        let mut cfg = MachineConfig::new(cores).with_cost(CostModel::from_micros(3, 50));
        if with_interference {
            cfg = cfg
                .with_interference(InterferenceConfig {
                    mean_interval: SimDuration::from_millis(40),
                    duration: SimDuration::from_millis(5),
                })
                .with_seed(seed);
        }
        let total = specs.len();
        let mut m = Machine::new(cfg, specs);
        let mut lcg = seed | 1;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut runnable: Vec<TaskId> = Vec::new();
        let check_invariants = |m: &Machine| {
            // Idle set == brute-force scan, same order.
            let incremental: Vec<CoreId> = m.idle_cores().collect();
            let brute: Vec<CoreId> = (0..m.num_cores())
                .map(CoreId::from_index)
                .filter(|c| m.core_state(*c) == CoreState::Idle)
                .collect();
            assert_eq!(incremental, brute, "idle set diverged from scan");
            assert_eq!(m.num_idle_cores(), brute.len());
            let mut buf = Vec::new();
            m.fill_idle_cores(&mut buf);
            assert_eq!(buf, brute);
            // Back-pointer == brute-force search, both directions.
            for c in (0..m.num_cores()).map(CoreId::from_index) {
                match m.core_state(c) {
                    CoreState::Running(t) => {
                        assert_eq!(m.core_of(t), Some(c), "missing back-pointer");
                        assert_eq!(m.task(t).running_core(), Some(c));
                    }
                    _ => assert!(
                        (0..m.num_tasks()).all(|i| m.core_of(TaskId::from_index(i)) != Some(c)),
                        "stale back-pointer onto non-running core {c}"
                    ),
                }
            }
            // observed_runtime == the pre-backpointer O(cores) definition.
            for i in 0..m.num_tasks() {
                let id = TaskId::from_index(i);
                let brute_extra = (0..m.num_cores())
                    .map(CoreId::from_index)
                    .find_map(|c| match m.running_on(c) {
                        Some((t, ran)) if t == id => Some(ran),
                        _ => None,
                    })
                    .unwrap_or(SimDuration::ZERO);
                assert_eq!(m.observed_runtime(id), m.task(id).cpu_time() + brute_extra);
            }
        };
        let mut finished = 0usize;
        let mut safety = 0u32;
        while finished < total {
            safety += 1;
            assert!(safety < 200_000, "runaway property case");
            match m.advance().expect("no deadlock: we always dispatch") {
                None => break,
                Some(call) => {
                    match call {
                        faas_kernel::PolicyCall::TaskNew(t) => runnable.push(t),
                        faas_kernel::PolicyCall::SliceExpired(t, _)
                        | faas_kernel::PolicyCall::InterferencePreempt(t, _) => runnable.push(t),
                        faas_kernel::PolicyCall::TaskFinished(..) => finished += 1,
                        _ => {}
                    }
                    check_invariants(&m);
                    // Randomly preempt a running core.
                    if next().is_multiple_of(7) {
                        let victim = CoreId::from_index((next() as usize) % m.num_cores());
                        if matches!(m.core_state(victim), CoreState::Running(_)) {
                            let t = m.preempt(victim).expect("victim was running");
                            runnable.push(t);
                            check_invariants(&m);
                        }
                    }
                    // Fill idle cores with random runnable tasks.
                    let idle: Vec<CoreId> = m.idle_cores().collect();
                    for core in idle {
                        if runnable.is_empty() {
                            break;
                        }
                        let idx = (next() as usize) % runnable.len();
                        let task = runnable.swap_remove(idx);
                        let slice = match next() % 3 {
                            0 => None,
                            1 => Some(SimDuration::from_micros(1 + next() % 900)),
                            _ => Some(SimDuration::from_millis(1 + next() % 30)),
                        };
                        m.dispatch(core, task, slice).expect("idle core dispatch");
                        check_invariants(&m);
                    }
                }
            }
        }
    });
}

/// The batched idle sweep in `Simulation::step` (which skips the sweep
/// after internal events when no core became idle and the last sweep
/// made no offer) is observationally equivalent to the brute-force
/// driver it replaced: advance the machine, deliver the callback, then
/// unconditionally offer every idle core in id order after every event.
#[test]
fn batched_sweep_equals_brute_force_driver() {
    /// The pre-batching driver, re-implemented over the public API.
    fn run_brute_force(
        cfg: MachineConfig,
        specs: Vec<TaskSpec>,
        mut policy: Chaos,
    ) -> faas_kernel::Machine {
        let mut m = Machine::new(cfg, specs);
        loop {
            let call = match m.advance().expect("no deadlock") {
                Some(c) => c,
                None => return m,
            };
            match call {
                faas_kernel::PolicyCall::TaskNew(t) => policy.on_task_new(&mut m, t),
                faas_kernel::PolicyCall::TaskFinished(t, c) => {
                    policy.on_task_finished(&mut m, t, c)
                }
                faas_kernel::PolicyCall::SliceExpired(t, c) => {
                    policy.on_slice_expired(&mut m, t, c)
                }
                faas_kernel::PolicyCall::InterferencePreempt(t, c) => {
                    policy.on_interference_preempt(&mut m, t, c)
                }
                faas_kernel::PolicyCall::Tick => policy.on_tick(&mut m),
                faas_kernel::PolicyCall::Internal => {}
            }
            for i in 0..m.num_cores() {
                let core = CoreId::from_index(i);
                if m.core_state(core) == CoreState::Idle {
                    policy.on_core_idle(&mut m, core);
                }
            }
        }
    }

    check::run("batched_sweep_equals_brute_force_driver", 48, |g| {
        let specs = arb_specs(g);
        let cores = g.usize_in(1, 5);
        let seed = g.u64_in(0, u64::MAX);
        let preempt_bias = g.boolean();
        let with_interference = g.boolean();
        let make_cfg = || {
            let mut cfg = MachineConfig::new(cores)
                .with_cost(CostModel::from_micros(3, 50))
                .with_message_log();
            if with_interference {
                cfg = cfg
                    .with_interference(InterferenceConfig {
                        mean_interval: SimDuration::from_millis(60),
                        duration: SimDuration::from_millis(8),
                    })
                    .with_seed(seed ^ 0x1234);
            }
            cfg
        };
        // Chaos is deterministic given its seed, so both drivers see the
        // same policy; any divergence comes from the sweep batching.
        let batched = Simulation::new(make_cfg(), specs.clone(), Chaos::new(seed, preempt_bias))
            .run()
            .expect("batched driver completes");
        let brute = run_brute_force(make_cfg(), specs, Chaos::new(seed, preempt_bias));
        assert_eq!(
            batched.machine.messages(),
            brute.messages(),
            "kernel message streams diverged"
        );
        assert_eq!(batched.machine.now(), brute.now());
        for i in 0..brute.num_tasks() {
            let id = TaskId::from_index(i);
            let (a, b) = (batched.machine.task(id), brute.task(id));
            assert_eq!(a.completion(), b.completion(), "task {id} completion");
            assert_eq!(a.cpu_time(), b.cpu_time(), "task {id} cpu time");
            assert_eq!(a.preemptions(), b.preemptions(), "task {id} preemptions");
        }
    });
}

/// Interference storms never corrupt accounting or strand tasks.
#[test]
fn interference_storm_is_survivable() {
    check::run("interference_storm_is_survivable", 64, |g| {
        let specs = arb_specs(g);
        let seed = g.u64_in(0, u64::MAX);
        let storm = InterferenceConfig {
            mean_interval: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(10),
        };
        let cfg = MachineConfig::new(2)
            .with_interference(storm)
            .with_seed(seed);
        let total = specs.len();
        let report = Simulation::new(cfg, specs, Chaos::new(seed ^ 0xABCD, false))
            .run()
            .expect("completes");
        assert_eq!(
            report
                .tasks
                .iter()
                .filter(|t| t.completion().is_some())
                .count(),
            total
        );
    });
}
