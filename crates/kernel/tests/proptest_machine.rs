//! Property tests of the kernel substrate under an adversarial agent: a
//! chaos policy that dispatches arbitrary runnable tasks with arbitrary
//! slices and preempts cores at random. Whatever the agent does, the
//! kernel's accounting must stay consistent and all work must eventually
//! complete.

use faas_kernel::{
    CoreId, CoreState, CostModel, InterferenceConfig, KernelMessage, Machine, MachineConfig,
    Scheduler, Simulation, TaskId, TaskSpec,
};
use faas_simcore::check::{self, Gen};
use faas_simcore::{SimDuration, SimTime};

use faas_simcore::SimDuration as Dur;

/// A deterministic chaos agent driven by an LCG.
struct Chaos {
    runnable: Vec<TaskId>,
    state: u64,
    preempt_bias: bool,
}

impl Chaos {
    fn new(seed: u64, preempt_bias: bool) -> Self {
        Chaos {
            runnable: Vec::new(),
            state: seed | 1,
            preempt_bias,
        }
    }
    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }
}

impl Scheduler for Chaos {
    fn name(&self) -> &str {
        "chaos"
    }
    fn on_task_new(&mut self, _m: &mut Machine, task: TaskId) {
        self.runnable.push(task);
    }
    fn on_slice_expired(&mut self, _m: &mut Machine, task: TaskId, _core: CoreId) {
        self.runnable.push(task);
    }
    fn on_task_finished(&mut self, m: &mut Machine, _task: TaskId, _core: CoreId) {
        // Occasionally preempt some other running core for no reason.
        if self.preempt_bias && self.next().is_multiple_of(3) {
            let cores = m.num_cores();
            let victim = CoreId::from_index((self.next() as usize) % cores);
            if matches!(m.core_state(victim), CoreState::Running(_)) {
                let t = m.preempt(victim).expect("victim was running");
                self.runnable.push(t);
            }
        }
    }
    fn on_core_idle(&mut self, m: &mut Machine, core: CoreId) {
        if self.runnable.is_empty() {
            return;
        }
        let idx = (self.next() as usize) % self.runnable.len();
        let task = self.runnable.swap_remove(idx);
        // Random slice: sometimes none, sometimes tiny, sometimes large.
        let slice = match self.next() % 4 {
            0 => None,
            1 => Some(Dur::from_micros(1 + self.next() % 500)),
            2 => Some(Dur::from_millis(1 + self.next() % 20)),
            _ => Some(Dur::from_secs(10)),
        };
        m.dispatch(core, task, slice)
            .expect("dispatch on idle core");
    }
}

fn arb_specs(g: &mut Gen) -> Vec<TaskSpec> {
    let n = g.usize_in(1, 40);
    (0..n)
        .map(|_| {
            let arr = g.u64_in(0, 2_000);
            let work = g.u64_in(1, 500);
            TaskSpec::function(
                SimTime::from_millis(arr),
                SimDuration::from_millis(work),
                128,
            )
        })
        .collect()
}

/// Whatever the chaos agent does, accounting stays consistent.
#[test]
fn kernel_accounting_survives_chaos() {
    check::run("kernel_accounting_survives_chaos", 64, |g| {
        let specs = arb_specs(g);
        let seed = g.u64_in(0, u64::MAX);
        let cores = g.usize_in(1, 5);
        let preempt_bias = g.boolean();
        let cfg = MachineConfig::new(cores)
            .with_cost(CostModel::from_micros(3, 50))
            .with_message_log();
        let total = specs.len();
        let works: Vec<SimDuration> = specs.iter().map(|s| s.work).collect();
        let report = Simulation::new(cfg, specs, Chaos::new(seed, preempt_bias))
            .run()
            .expect("chaos must not deadlock the kernel");
        assert_eq!(report.tasks.len(), total);
        for (task, work) in report.tasks.iter().zip(&works) {
            assert!(task.completion().is_some());
            // A task consumes at least its nominal work; preemptions only add.
            assert!(task.cpu_time() >= *work);
            let exec = task.execution_time().unwrap();
            assert!(
                exec + SimDuration::from_micros(1) >= task.cpu_time() - (task.cpu_time() - *work),
                "execution wall-clock below pure work"
            );
        }
        // Busy time is bounded by capacity.
        let busy: SimDuration = report.core_stats.iter().map(|s| s.busy).sum();
        let cap = SimDuration::from_micros(report.finished_at.as_micros() * cores as u64);
        assert!(busy <= cap + SimDuration::from_micros(1));
    });
}

/// The kernel message protocol is well-formed under chaos: one
/// TaskNew and one TaskDead per task, dispatches between them.
#[test]
fn message_protocol_is_well_formed() {
    check::run("message_protocol_is_well_formed", 64, |g| {
        let specs = arb_specs(g);
        let seed = g.u64_in(0, u64::MAX);
        let cfg = MachineConfig::new(2).with_message_log();
        let total = specs.len();
        let report = Simulation::new(cfg, specs, Chaos::new(seed, true))
            .run()
            .expect("completes");
        let log = report.machine.messages();
        let mut news = vec![0u32; total];
        let mut deads = vec![0u32; total];
        let mut dispatches = vec![0u32; total];
        for (_, msg) in log {
            match msg {
                KernelMessage::TaskNew { task } => news[task.index()] += 1,
                KernelMessage::TaskDead { task, .. } => deads[task.index()] += 1,
                KernelMessage::Dispatch { task, .. } => dispatches[task.index()] += 1,
                _ => {}
            }
        }
        for i in 0..total {
            assert_eq!(news[i], 1, "exactly one TaskNew");
            assert_eq!(deads[i], 1, "exactly one TaskDead");
            assert!(dispatches[i] >= 1, "ran at least once");
        }
        // Per task: TaskNew precedes first Dispatch precedes TaskDead.
        for i in 0..total {
            let tid = |m: &KernelMessage| m.task().map(|t| t.index() == i).unwrap_or(false);
            let first_new = log
                .iter()
                .position(|(_, m)| matches!(m, KernelMessage::TaskNew { .. }) && tid(m))
                .unwrap();
            let first_dispatch = log
                .iter()
                .position(|(_, m)| matches!(m, KernelMessage::Dispatch { .. }) && tid(m))
                .unwrap();
            let dead = log
                .iter()
                .position(|(_, m)| matches!(m, KernelMessage::TaskDead { .. }) && tid(m))
                .unwrap();
            assert!(first_new < first_dispatch);
            assert!(first_dispatch < dead);
        }
    });
}

/// Interference storms never corrupt accounting or strand tasks.
#[test]
fn interference_storm_is_survivable() {
    check::run("interference_storm_is_survivable", 64, |g| {
        let specs = arb_specs(g);
        let seed = g.u64_in(0, u64::MAX);
        let storm = InterferenceConfig {
            mean_interval: SimDuration::from_millis(50),
            duration: SimDuration::from_millis(10),
        };
        let cfg = MachineConfig::new(2)
            .with_interference(storm)
            .with_seed(seed);
        let total = specs.len();
        let report = Simulation::new(cfg, specs, Chaos::new(seed ^ 0xABCD, false))
            .run()
            .expect("completes");
        assert_eq!(
            report
                .tasks
                .iter()
                .filter(|t| t.completion().is_some())
                .count(),
            total
        );
    });
}
