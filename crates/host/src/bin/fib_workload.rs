//! The paper's Fibonacci workload binary (§V-A): a CPU-bound process whose
//! runtime is controlled by the argument `N` (and an optional repeat
//! count), used to emulate serverless functions of different durations.
//!
//! Usage: `fib-workload <N> [repeats]`

use std::env;
use std::process::ExitCode;

/// Naive recursive Fibonacci — deliberately exponential, exactly like the
/// paper's calibration workload (runtime grows ~φ per increment of N).
fn fib(n: u32) -> u64 {
    if n < 2 {
        n as u64
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let n: u32 = match args.get(1).and_then(|a| a.parse().ok()) {
        Some(n) if n <= 50 => n,
        _ => {
            eprintln!("usage: fib-workload <N<=50> [repeats]");
            return ExitCode::FAILURE;
        }
    };
    let repeats: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1);
    let mut acc = 0u64;
    for _ in 0..repeats {
        acc = acc.wrapping_add(std::hint::black_box(fib(std::hint::black_box(n))));
    }
    println!("fib({n}) x{repeats} = {acc}");
    ExitCode::SUCCESS
}
