//! The live utilization monitor — §VI-C's "CPU utilization daemon
//! monitoring the CPU utilization of each core through psutil", rebuilt
//! on `/proc/stat` with a background sampler thread and a shared snapshot
//! (the paper's shared-memory hand-off).
//!
//! [`HostRightsizer`] consumes the snapshots and applies the same
//! decision logic as the simulated controller
//! ([`RightsizingController`](hybrid_scheduler::RightsizingController))
//! to a live [`HostConfig`]-style core split: when the groups' utilization
//! diverges, a core moves from the under-utilized group to the overloaded
//! one, and all managed processes get their affinity masks refreshed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hybrid_scheduler::{MigrationDirection, RightsizingController};

use crate::procstat::{read_core_ticks, CoreTicks};
use crate::sync::Mutex;

/// One utilization sample: per-core busy fraction since the previous
/// sample, in `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct UtilizationSnapshot {
    /// Busy fraction per core index.
    pub per_core: Vec<f64>,
}

impl UtilizationSnapshot {
    /// Average utilization over `cores` (0.0 for an empty set).
    pub fn group_mean(&self, cores: &[usize]) -> f64 {
        if cores.is_empty() {
            return 0.0;
        }
        let sum: f64 = cores
            .iter()
            .map(|&c| self.per_core.get(c).copied().unwrap_or(0.0))
            .sum();
        sum / cores.len() as f64
    }
}

/// A background `/proc/stat` sampler publishing utilization snapshots.
///
/// Dropping the monitor stops the sampler thread.
pub struct UtilizationMonitor {
    latest: Arc<Mutex<UtilizationSnapshot>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for UtilizationMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UtilizationMonitor").finish_non_exhaustive()
    }
}

impl UtilizationMonitor {
    /// Starts the sampler with the given period.
    ///
    /// # Errors
    ///
    /// Fails if `/proc/stat` cannot be read at startup.
    pub fn start(period: Duration) -> std::io::Result<Self> {
        let mut prev = read_core_ticks()?;
        let latest = Arc::new(Mutex::new(UtilizationSnapshot::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let latest_w = Arc::clone(&latest);
        let stop_r = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_r.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                let Ok(cur) = read_core_ticks() else { continue };
                let per_core: Vec<f64> = cur
                    .iter()
                    .zip(prev.iter().chain(std::iter::repeat(&CoreTicks::default())))
                    .map(|(now, before)| now.utilization_since(before))
                    .collect();
                prev = cur;
                *latest_w.lock() = UtilizationSnapshot { per_core };
            }
        });
        Ok(UtilizationMonitor {
            latest,
            stop,
            handle: Some(handle),
        })
    }

    /// The most recent snapshot (empty until the first period elapses).
    pub fn snapshot(&self) -> UtilizationSnapshot {
        self.latest.lock().clone()
    }
}

impl Drop for UtilizationMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Live CPU-group rightsizing over a mutable core split.
///
/// The decision logic is shared with the simulator
/// (`hybrid_scheduler::RightsizingController`); this type owns the live
/// core lists and tells the caller when to re-pin processes.
#[derive(Debug)]
pub struct HostRightsizer {
    controller: RightsizingController,
    fifo_cores: Vec<usize>,
    cfs_cores: Vec<usize>,
    /// Monotonic virtual clock fed by the caller (seconds of uptime).
    migrations: usize,
}

impl HostRightsizer {
    /// Creates a rightsizer over an initial split.
    ///
    /// # Panics
    ///
    /// Panics if either group is empty or they overlap.
    pub fn new(
        fifo_cores: Vec<usize>,
        cfs_cores: Vec<usize>,
        cfg: hybrid_scheduler::RightsizingConfig,
    ) -> Self {
        assert!(
            !fifo_cores.is_empty() && !cfs_cores.is_empty(),
            "both groups non-empty"
        );
        for c in &fifo_cores {
            assert!(!cfs_cores.contains(c), "core groups must be disjoint");
        }
        HostRightsizer {
            controller: RightsizingController::new(cfg),
            fifo_cores,
            cfs_cores,
            migrations: 0,
        }
    }

    /// Current FIFO-group cores.
    pub fn fifo_cores(&self) -> &[usize] {
        &self.fifo_cores
    }

    /// Current CFS-group cores.
    pub fn cfs_cores(&self) -> &[usize] {
        &self.cfs_cores
    }

    /// Number of migrations performed.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Feeds one utilization snapshot at virtual time `now` and, if the
    /// gap warrants it, migrates one core. Returns the direction when a
    /// migration happened; the caller must then refresh affinity masks.
    pub fn observe(
        &mut self,
        now: faas_simcore::SimTime,
        snapshot: &UtilizationSnapshot,
    ) -> Option<MigrationDirection> {
        let fifo_util = snapshot.group_mean(&self.fifo_cores);
        let cfs_util = snapshot.group_mean(&self.cfs_cores);
        let decision = self.controller.decide(
            now,
            fifo_util,
            cfs_util,
            self.fifo_cores.len(),
            self.cfs_cores.len(),
        )?;
        match decision {
            MigrationDirection::CfsToFifo => {
                let core = self.cfs_cores.pop().expect("cfs group non-empty");
                self.fifo_cores.push(core);
            }
            MigrationDirection::FifoToCfs => {
                let core = self.fifo_cores.pop().expect("fifo group non-empty");
                self.cfs_cores.push(core);
            }
        }
        self.controller.note_migration(now);
        self.migrations += 1;
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_simcore::{SimDuration, SimTime};
    use hybrid_scheduler::RightsizingConfig;

    fn snap(vals: &[f64]) -> UtilizationSnapshot {
        UtilizationSnapshot {
            per_core: vals.to_vec(),
        }
    }

    fn rightsizer() -> HostRightsizer {
        HostRightsizer::new(
            vec![0, 1],
            vec![2, 3],
            RightsizingConfig {
                window: SimDuration::from_secs(1),
                threshold: 0.2,
                cooldown: SimDuration::from_millis(100),
                min_cores: 1,
            },
        )
    }

    #[test]
    fn group_mean_over_snapshot() {
        let s = snap(&[1.0, 0.5, 0.0, 0.25]);
        assert!((s.group_mean(&[0, 1]) - 0.75).abs() < 1e-12);
        assert!((s.group_mean(&[2, 3]) - 0.125).abs() < 1e-12);
        assert_eq!(s.group_mean(&[]), 0.0);
        assert_eq!(s.group_mean(&[99]), 0.0, "missing cores count as idle");
    }

    #[test]
    fn overloaded_fifo_pulls_core() {
        let mut r = rightsizer();
        let got = r.observe(SimTime::from_secs(10), &snap(&[1.0, 1.0, 0.1, 0.1]));
        assert_eq!(got, Some(MigrationDirection::CfsToFifo));
        assert_eq!(r.fifo_cores(), &[0, 1, 3]);
        assert_eq!(r.cfs_cores(), &[2]);
        assert_eq!(r.migrations(), 1);
    }

    #[test]
    fn cooldown_spaces_migrations() {
        // Three CFS cores so the donor is not at min_cores after one move.
        let mut r = HostRightsizer::new(
            vec![0, 1],
            vec![2, 3, 4],
            RightsizingConfig {
                window: SimDuration::from_secs(1),
                threshold: 0.2,
                cooldown: SimDuration::from_millis(100),
                min_cores: 1,
            },
        );
        let busy = snap(&[1.0, 1.0, 0.1, 0.1, 0.1]);
        assert!(r.observe(SimTime::from_secs(10), &busy).is_some());
        assert!(
            r.observe(SimTime::from_secs(10), &busy).is_none(),
            "cooldown"
        );
        assert!(r
            .observe(
                SimTime::from_secs(10) + SimDuration::from_millis(200),
                &busy
            )
            .is_some());
        assert_eq!(r.migrations(), 2);
    }

    #[test]
    fn balanced_groups_do_nothing() {
        let mut r = rightsizer();
        assert!(r
            .observe(SimTime::from_secs(5), &snap(&[0.9, 0.9, 0.85, 0.95]))
            .is_none());
    }

    #[test]
    fn min_cores_respected() {
        let mut r = rightsizer();
        let busy = snap(&[1.0, 1.0, 0.0, 0.0]);
        let mut t = SimTime::from_secs(1);
        let mut moved = 0;
        for _ in 0..5 {
            if r.observe(t, &busy).is_some() {
                moved += 1;
            }
            t += SimDuration::from_secs(1);
        }
        assert_eq!(moved, 1, "CFS group stops donating at min_cores=1");
        assert_eq!(r.cfs_cores().len(), 1);
    }

    #[test]
    fn live_monitor_produces_snapshots() {
        let monitor = match UtilizationMonitor::start(Duration::from_millis(50)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("skipping: /proc/stat unavailable ({e})");
                return;
            }
        };
        // Burn CPU so at least one core shows activity.
        let mut acc = 0u64;
        let t = std::time::Instant::now();
        while t.elapsed() < Duration::from_millis(200) {
            acc = acc.wrapping_add(1);
        }
        std::hint::black_box(acc);
        let snapshot = monitor.snapshot();
        assert!(
            !snapshot.per_core.is_empty(),
            "sampler published a snapshot"
        );
        assert!(snapshot.per_core.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    #[should_panic]
    fn overlapping_groups_rejected() {
        let _ = HostRightsizer::new(vec![0, 1], vec![1, 2], RightsizingConfig::default());
    }
}
