//! Live workload replay (Fig. 9 steps ②–④ on a real kernel).
//!
//! [`TraceRunner`] reads a workload file — the same CSV the `azure-trace`
//! crate writes — and launches one CPU-bound process per row at its
//! inter-arrival time, handing each pid to the
//! [`HybridHostController`](crate::HybridHostController). This is the
//! paper's workload generator: "reads the items in the workload file and
//! asynchronously launches Fibonacci functions according to the
//! corresponding IAT".

use std::io;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use crate::controller::HybridHostController;

/// One row of a live workload: launch `command` at `at` after start.
pub struct PlannedLaunch {
    /// Offset from replay start.
    pub at: Duration,
    /// The process to spawn.
    pub command: Command,
}

impl std::fmt::Debug for PlannedLaunch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedLaunch")
            .field("at", &self.at)
            .finish()
    }
}

/// Replays a planned launch sequence onto a [`HybridHostController`].
#[derive(Debug)]
pub struct TraceRunner {
    launches: Vec<PlannedLaunch>,
    /// Wall-clock compression: virtual IATs are divided by this factor.
    speedup: f64,
    poll: Duration,
}

impl TraceRunner {
    /// Creates a runner over explicit launches.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not positive.
    pub fn new(launches: Vec<PlannedLaunch>, speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        TraceRunner {
            launches,
            speedup,
            poll: Duration::from_millis(20),
        }
    }

    /// Builds launches from a workload CSV (as written by
    /// `azure_trace::AzureTrace::write_csv`), mapping each row's
    /// Fibonacci argument onto an invocation of `fib_binary`.
    ///
    /// `n_offset` rebases the trace's N=36..46 onto arguments that run in
    /// reasonable time on the current machine (e.g. `-8` maps 36→28).
    ///
    /// # Errors
    ///
    /// Propagates file I/O and format errors.
    pub fn from_workload_csv(
        path: PathBuf,
        fib_binary: PathBuf,
        n_offset: i32,
        speedup: f64,
    ) -> io::Result<Self> {
        let content = std::fs::read_to_string(path)?;
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("workload: {what}"));
        let mut launches = Vec::new();
        let mut at = Duration::ZERO;
        for (i, line) in content.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.trim().split(',').collect();
            if parts.len() != 4 {
                return Err(bad("expected 4 fields"));
            }
            let iat_us: u64 = parts[0].parse().map_err(|_| bad("bad iat"))?;
            let fib_n: i64 = parts[1].parse().map_err(|_| bad("bad fib_n"))?;
            let n = (fib_n + n_offset as i64).clamp(1, 50) as u32;
            at += Duration::from_micros(iat_us);
            let mut command = Command::new(&fib_binary);
            command.arg(n.to_string());
            launches.push(PlannedLaunch { at, command });
        }
        Ok(TraceRunner::new(launches, speedup))
    }

    /// Number of planned launches.
    pub fn len(&self) -> usize {
        self.launches.len()
    }

    /// `true` if nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
    }

    /// Replays all launches onto `controller`, polling it in between, and
    /// waits (up to `drain_timeout`) for every process to finish.
    /// Returns the number of successfully launched processes.
    ///
    /// # Errors
    ///
    /// Propagates the first launch error (processes already launched keep
    /// being managed by the controller).
    pub fn replay(
        self,
        controller: &HybridHostController,
        drain_timeout: Duration,
    ) -> io::Result<usize> {
        let start = Instant::now();
        let mut launched = 0usize;
        for planned in self.launches {
            let due = planned.at.div_f64(self.speedup);
            while start.elapsed() < due {
                controller.poll_once();
                let remaining = due.saturating_sub(start.elapsed());
                std::thread::sleep(remaining.min(self.poll));
            }
            controller.launch(planned.command)?;
            launched += 1;
        }
        controller.run_to_completion(self.poll, drain_timeout);
        Ok(launched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::HostConfig;

    fn sleep_launch(at_ms: u64, secs: &str) -> PlannedLaunch {
        let mut command = Command::new("sleep");
        command.arg(secs);
        PlannedLaunch {
            at: Duration::from_millis(at_ms),
            command,
        }
    }

    #[test]
    fn replays_in_order_and_drains() {
        let runner = TraceRunner::new(
            vec![
                sleep_launch(0, "0.05"),
                sleep_launch(30, "0.05"),
                sleep_launch(60, "0.05"),
            ],
            1.0,
        );
        assert_eq!(runner.len(), 3);
        let ctl = HybridHostController::new(HostConfig::split(1, 1, Duration::from_millis(500)));
        match runner.replay(&ctl, Duration::from_secs(10)) {
            Ok(n) => {
                assert_eq!(n, 3);
                assert_eq!(ctl.records().len(), 3);
            }
            Err(e) => eprintln!("skipping: cannot launch/pin here ({e})"),
        }
    }

    #[test]
    fn speedup_compresses_wall_clock() {
        let runner = TraceRunner::new(vec![sleep_launch(5_000, "0.01")], 100.0);
        let ctl = HybridHostController::new(HostConfig::split(1, 1, Duration::from_millis(500)));
        let t = Instant::now();
        match runner.replay(&ctl, Duration::from_secs(10)) {
            Ok(_) => assert!(
                t.elapsed() < Duration::from_secs(3),
                "5 s of virtual IAT at 100x must replay fast"
            ),
            Err(e) => eprintln!("skipping: cannot launch/pin here ({e})"),
        }
    }

    #[test]
    fn csv_loader_parses_generated_workloads() {
        // Write a tiny workload file in the azure-trace format by hand.
        let dir = std::env::temp_dir().join(format!("faas-host-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.csv");
        std::fs::write(
            &path,
            "iat_us,fib_n,duration_us,mem_mib\n0,36,147000,128\n1000,41,1633000,256\n",
        )
        .unwrap();
        let runner = TraceRunner::from_workload_csv(path, PathBuf::from("/bin/true"), -10, 1.0)
            .expect("parse workload");
        assert_eq!(runner.len(), 2);
        assert_eq!(runner.launches[1].at, Duration::from_millis(1));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_loader_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("faas-host-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "iat_us,fib_n,duration_us,mem_mib\n1,2\n").unwrap();
        assert!(TraceRunner::from_workload_csv(path, PathBuf::from("/bin/true"), 0, 1.0).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
