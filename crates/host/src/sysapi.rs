//! Safe wrappers over the Linux scheduling syscalls the paper manipulates.
//!
//! This is the real-OS counterpart of the simulated kernel's dispatch
//! verbs: `sched_setaffinity(2)` pins a process to a core group and
//! `sched_setscheduler(2)` selects its policy (`SCHED_FIFO` for the
//! short-task group, `SCHED_OTHER`/CFS for the long-task group).
//!
//! `SCHED_FIFO` requires `CAP_SYS_NICE`; every setter reports a typed
//! error so callers (and tests) can degrade gracefully on unprivileged
//! hosts.

use std::io;

use crate::ffi as libc;

/// A process id.
pub type Pid = libc::pid_t;

/// A typed failure from the scheduling syscall wrappers.
///
/// On Linux every failure carries the real OS errno. On other platforms
/// the FFI stubs cannot set `errno`, so instead of surfacing a stale or
/// zero errno the wrappers report [`SysError::UnsupportedPlatform`],
/// naming the call that is Linux-only (ROADMAP "non-Linux platform gap").
#[derive(Debug)]
pub enum SysError {
    /// The underlying syscall failed with a real OS error.
    Os(io::Error),
    /// The call is not available on this platform (non-Linux build).
    UnsupportedPlatform {
        /// The syscall wrapper that was invoked.
        call: &'static str,
    },
}

impl std::fmt::Display for SysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysError::Os(e) => write!(f, "{e}"),
            SysError::UnsupportedPlatform { call } => {
                write!(f, "{call} is only available on Linux")
            }
        }
    }
}

impl std::error::Error for SysError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SysError::Os(e) => Some(e),
            SysError::UnsupportedPlatform { .. } => None,
        }
    }
}

impl From<SysError> for io::Error {
    fn from(e: SysError) -> io::Error {
        match e {
            SysError::Os(e) => e,
            SysError::UnsupportedPlatform { .. } => {
                io::Error::new(io::ErrorKind::Unsupported, e.to_string())
            }
        }
    }
}

impl SysError {
    /// The raw OS errno, if this is a real OS error.
    pub fn raw_os_error(&self) -> Option<i32> {
        match self {
            SysError::Os(e) => e.raw_os_error(),
            SysError::UnsupportedPlatform { .. } => None,
        }
    }
}

/// Builds the error for a failed syscall: the live errno on Linux, the
/// typed platform gap everywhere else (where the stubs leave errno stale).
fn syscall_error(call: &'static str) -> SysError {
    if cfg!(target_os = "linux") {
        SysError::Os(io::Error::last_os_error())
    } else {
        SysError::UnsupportedPlatform { call }
    }
}

/// Scheduling policy of a process, mirroring the kernel's classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// `SCHED_OTHER` — the CFS class.
    Other,
    /// `SCHED_FIFO` with a real-time priority in `1..=99`.
    Fifo(i32),
    /// `SCHED_RR` with a real-time priority in `1..=99`.
    RoundRobin(i32),
    /// `SCHED_BATCH`.
    Batch,
    /// Any policy this wrapper does not model.
    Unknown(i32),
}

impl SchedPolicy {
    fn to_raw(self) -> (i32, i32) {
        match self {
            SchedPolicy::Other => (libc::SCHED_OTHER, 0),
            SchedPolicy::Fifo(p) => (libc::SCHED_FIFO, p),
            SchedPolicy::RoundRobin(p) => (libc::SCHED_RR, p),
            SchedPolicy::Batch => (libc::SCHED_BATCH, 0),
            SchedPolicy::Unknown(raw) => (raw, 0),
        }
    }

    fn from_raw(policy: i32, prio: i32) -> Self {
        match policy {
            x if x == libc::SCHED_OTHER => SchedPolicy::Other,
            x if x == libc::SCHED_FIFO => SchedPolicy::Fifo(prio),
            x if x == libc::SCHED_RR => SchedPolicy::RoundRobin(prio),
            x if x == libc::SCHED_BATCH => SchedPolicy::Batch,
            other => SchedPolicy::Unknown(other),
        }
    }
}

/// Pins `pid` to the given core indices.
///
/// # Errors
///
/// Returns the OS error (e.g. `EINVAL` for an empty/out-of-range set,
/// `ESRCH` for a dead process), or
/// [`SysError::UnsupportedPlatform`] on non-Linux builds.
pub fn set_affinity(pid: Pid, cores: &[usize]) -> Result<(), SysError> {
    if cores.is_empty() {
        return Err(SysError::Os(io::Error::new(
            io::ErrorKind::InvalidInput,
            "empty core set",
        )));
    }
    // SAFETY: cpu_set_t is a plain bitset; zeroed is a valid empty set.
    let mut set: libc::cpu_set_t = unsafe { std::mem::zeroed() };
    unsafe {
        libc::CPU_ZERO(&mut set);
        for &c in cores {
            libc::CPU_SET(c, &mut set);
        }
    }
    // SAFETY: `set` is a valid cpu_set_t of the size we pass.
    let rc = unsafe { libc::sched_setaffinity(pid, std::mem::size_of::<libc::cpu_set_t>(), &set) };
    if rc == 0 {
        Ok(())
    } else {
        Err(syscall_error("sched_setaffinity"))
    }
}

/// Reads the affinity mask of `pid` as a list of core indices.
///
/// # Errors
///
/// Returns the OS error, or [`SysError::UnsupportedPlatform`] on
/// non-Linux builds.
pub fn get_affinity(pid: Pid) -> Result<Vec<usize>, SysError> {
    // SAFETY: zeroed cpu_set_t is valid; the kernel fills it.
    let mut set: libc::cpu_set_t = unsafe { std::mem::zeroed() };
    let rc =
        // SAFETY: `set` is a valid out-pointer of the size we pass.
        unsafe { libc::sched_getaffinity(pid, std::mem::size_of::<libc::cpu_set_t>(), &mut set) };
    if rc != 0 {
        return Err(syscall_error("sched_getaffinity"));
    }
    let max = num_cpus_configured();
    let mut cores = Vec::new();
    for c in 0..max {
        // SAFETY: c < CPU_SETSIZE is guaranteed by the kernel's cpu count.
        if unsafe { libc::CPU_ISSET(c, &set) } {
            cores.push(c);
        }
    }
    Ok(cores)
}

/// Sets the scheduling policy of `pid`.
///
/// # Errors
///
/// `EPERM` without `CAP_SYS_NICE` for real-time policies — callers should
/// fall back to [`SchedPolicy::Other`] (see
/// [`set_policy_or_fallback`]). On non-Linux builds every call reports
/// [`SysError::UnsupportedPlatform`].
pub fn set_policy(pid: Pid, policy: SchedPolicy) -> Result<(), SysError> {
    let (raw, prio) = policy.to_raw();
    let param = libc::sched_param {
        sched_priority: prio,
    };
    // SAFETY: `param` is a valid sched_param for the chosen policy.
    let rc = unsafe { libc::sched_setscheduler(pid, raw, &param) };
    if rc == 0 {
        Ok(())
    } else {
        Err(syscall_error("sched_setscheduler"))
    }
}

/// Sets `policy`, falling back to `SCHED_OTHER` when the host refuses a
/// real-time class. Returns the policy actually in effect.
///
/// Unprivileged processes get `EPERM` (no `CAP_SYS_NICE`); sandboxed
/// kernels (gVisor, some containers) reject real-time classes with
/// `EINVAL` or `ENOSYS`. All three degrade to CFS.
///
/// # Errors
///
/// Returns the OS error if even the fallback fails, or
/// [`SysError::UnsupportedPlatform`] on non-Linux builds.
pub fn set_policy_or_fallback(pid: Pid, policy: SchedPolicy) -> Result<SchedPolicy, SysError> {
    let realtime = matches!(policy, SchedPolicy::Fifo(_) | SchedPolicy::RoundRobin(_));
    match set_policy(pid, policy) {
        Ok(()) => Ok(policy),
        Err(e)
            if realtime
                && matches!(
                    e.raw_os_error(),
                    Some(libc::EPERM) | Some(libc::EINVAL) | Some(libc::ENOSYS)
                ) =>
        {
            set_policy(pid, SchedPolicy::Other)?;
            Ok(SchedPolicy::Other)
        }
        Err(e) => Err(e),
    }
}

/// Reads the scheduling policy of `pid`.
///
/// # Errors
///
/// Returns the OS error, or [`SysError::UnsupportedPlatform`] on
/// non-Linux builds.
pub fn get_policy(pid: Pid) -> Result<SchedPolicy, SysError> {
    // SAFETY: plain syscall returning the policy number.
    let raw = unsafe { libc::sched_getscheduler(pid) };
    if raw < 0 {
        return Err(syscall_error("sched_getscheduler"));
    }
    let mut param = libc::sched_param { sched_priority: 0 };
    // SAFETY: `param` is a valid out-pointer.
    let rc = unsafe { libc::sched_getparam(pid, &mut param) };
    if rc != 0 {
        return Err(syscall_error("sched_getparam"));
    }
    Ok(SchedPolicy::from_raw(raw, param.sched_priority))
}

/// Number of configured CPUs on this host.
pub fn num_cpus_configured() -> usize {
    // SAFETY: sysconf is always safe to call.
    let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_CONF) };
    if n <= 0 {
        1
    } else {
        n as usize
    }
}

/// `true` if this process may use real-time scheduling classes.
pub fn can_use_realtime() -> bool {
    let me = std::process::id() as Pid;
    let before = match get_policy(me) {
        Ok(p) => p,
        Err(_) => return false,
    };
    match set_policy(me, SchedPolicy::Fifo(1)) {
        Ok(()) => {
            let _ = set_policy(me, before);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me() -> Pid {
        std::process::id() as Pid
    }

    #[test]
    fn affinity_roundtrip_on_self() {
        let original = get_affinity(me()).expect("read own affinity");
        assert!(!original.is_empty());
        // Restrict to the first allowed core, verify, restore.
        let first = original[0];
        set_affinity(me(), &[first]).expect("pin self");
        let pinned = get_affinity(me()).expect("read pinned");
        assert_eq!(pinned, vec![first]);
        set_affinity(me(), &original).expect("restore");
    }

    #[test]
    fn empty_core_set_rejected() {
        let err: io::Error = set_affinity(me(), &[]).unwrap_err().into();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn unsupported_platform_error_is_typed() {
        let e = SysError::UnsupportedPlatform {
            call: "sched_setaffinity",
        };
        assert!(e.to_string().contains("only available on Linux"));
        assert_eq!(e.raw_os_error(), None);
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::Unsupported);
    }

    #[cfg(not(target_os = "linux"))]
    #[test]
    fn non_linux_calls_report_platform_gap() {
        // On non-Linux hosts the stubs fail without touching errno; the
        // wrapper must say why instead of surfacing a stale errno.
        match get_policy(me()) {
            Err(SysError::UnsupportedPlatform { call }) => {
                assert_eq!(call, "sched_getscheduler");
            }
            other => panic!("expected UnsupportedPlatform, got {other:?}"),
        }
    }

    #[test]
    fn policy_read_on_self() {
        let p = get_policy(me()).expect("read own policy");
        // A fresh test process runs under CFS unless the harness changed it.
        assert!(matches!(
            p,
            SchedPolicy::Other
                | SchedPolicy::Batch
                | SchedPolicy::Fifo(_)
                | SchedPolicy::RoundRobin(_)
        ));
    }

    #[test]
    fn fallback_setter_always_lands_on_some_policy() {
        let got = set_policy_or_fallback(me(), SchedPolicy::Fifo(1)).expect("set with fallback");
        match got {
            SchedPolicy::Fifo(1) => {
                // Privileged environment: restore CFS for the other tests.
                set_policy(me(), SchedPolicy::Other).unwrap();
            }
            SchedPolicy::Other => {} // unprivileged fallback
            other => panic!("unexpected policy {other:?}"),
        }
    }

    #[test]
    fn dead_process_reports_error() {
        // PID 0 targets the caller; use an almost-certainly-free pid.
        let bogus: Pid = 2_147_483_000;
        assert!(set_affinity(bogus, &[0]).is_err());
        assert!(get_policy(bogus).is_err());
    }

    #[test]
    fn cpu_count_positive() {
        assert!(num_cpus_configured() >= 1);
    }
}
