//! Tiny std-based stand-ins for `parking_lot` and `crossbeam-channel`.
//!
//! The offline build environment has no external crates, so this module
//! provides the two primitives the host backend uses, with the same call
//! shapes: a [`Mutex`] whose `lock()` returns the guard directly (poison
//! is ignored — a panicked holder doesn't invalidate scheduler state
//! here), and an [`unbounded`] MPMC channel whose [`Receiver`] is
//! cloneable and supports non-blocking draining.

use std::collections::VecDeque;
use std::sync::{Arc, MutexGuard};

/// A mutex with `parking_lot`'s ergonomics: `lock()` returns the guard.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering the guard if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a value; never blocks and never fails.
    pub fn send(&self, value: T) -> Result<(), T> {
        self.queue.lock().push_back(value);
        Ok(())
    }
}

/// The receiving half of an unbounded channel; clone freely.
#[derive(Debug)]
pub struct Receiver<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues one value if any is ready.
    pub fn try_recv(&self) -> Option<T> {
        self.queue.lock().pop_front()
    }

    /// Drains every value currently in the channel without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv())
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let queue = Arc::new(Mutex::new(VecDeque::new()));
    (
        Sender {
            queue: Arc::clone(&queue),
        },
        Receiver { queue },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_delivers_in_order_across_clones() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let rx2 = rx.clone();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx2.try_iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
