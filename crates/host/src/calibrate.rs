//! Live Fibonacci calibration (§V-B "Calibration").
//!
//! The paper runs the Fibonacci binary for N = 36..46 and averages 100
//! repetitions to map arguments to durations on their hardware. This
//! module does the same measurement in-process (same naive recursion as
//! the `fib-workload` binary) so a live deployment can anchor
//! [`FibCalibration`](hybrid_scheduler) — well, the `azure-trace`
//! calibration — to the current machine.

use std::time::{Duration, Instant};

/// Naive recursive Fibonacci, identical to the workload binary.
pub fn fib_naive(n: u32) -> u64 {
    if n < 2 {
        n as u64
    } else {
        fib_naive(n - 1) + fib_naive(n - 2)
    }
}

/// Measures the average runtime of `fib_naive(n)` over `repetitions`.
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn measure_fib(n: u32, repetitions: u32) -> Duration {
    assert!(repetitions > 0, "need at least one repetition");
    let start = Instant::now();
    for _ in 0..repetitions {
        std::hint::black_box(fib_naive(std::hint::black_box(n)));
    }
    start.elapsed() / repetitions
}

/// Measures the golden-ratio growth between consecutive N — the empirical
/// justification for the `azure-trace` cost model. Returns the mean ratio
/// `t(n+1)/t(n)` over `lo..hi`.
///
/// # Panics
///
/// Panics if `hi <= lo`.
pub fn measure_growth_ratio(lo: u32, hi: u32, repetitions: u32) -> f64 {
    assert!(hi > lo, "need at least one step");
    let times: Vec<f64> = (lo..=hi)
        .map(|n| measure_fib(n, repetitions).as_secs_f64())
        .collect();
    let ratios: Vec<f64> = times.windows(2).map(|w| w[1] / w[0]).collect();
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_matches_closed_values() {
        assert_eq!(fib_naive(0), 0);
        assert_eq!(fib_naive(10), 55);
        assert_eq!(fib_naive(20), 6_765);
    }

    #[test]
    fn measurement_is_positive_and_monotone() {
        // Small N keeps the test fast on any machine.
        let t25 = measure_fib(25, 3);
        let t29 = measure_fib(29, 3);
        assert!(t25 > Duration::ZERO);
        assert!(t29 > t25, "fib(29) must take longer than fib(25)");
    }

    #[test]
    fn growth_ratio_is_golden_ish() {
        // Averaged over several steps the ratio lands near φ ≈ 1.618;
        // noisy CI machines get a generous band.
        let r = measure_growth_ratio(24, 30, 3);
        assert!((1.3..=2.1).contains(&r), "growth ratio was {r}");
    }
}
