//! The user-space hybrid controller on a live Linux host.
//!
//! This is the real-OS twin of
//! [`HybridScheduler`](hybrid_scheduler::HybridScheduler): function
//! processes start pinned to the *short-task* core set under `SCHED_FIFO`
//! (falling back to CFS without `CAP_SYS_NICE`); a polling monitor reads
//! their CPU time from `/proc` and, once a process exceeds the time limit,
//! migrates it — new affinity mask + `SCHED_OTHER` — to the *long-task*
//! core set, exactly the preempt-and-migrate step of §IV-A performed with
//! stock kernel APIs instead of ghOSt.

use std::io;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::procstat::read_proc_cpu;
use crate::sync::{unbounded, Mutex, Receiver, Sender};
use crate::sysapi::{set_affinity, set_policy_or_fallback, Pid, SchedPolicy};

/// Configuration of the live hybrid controller.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Core indices of the short-task (FIFO) group.
    pub fifo_cores: Vec<usize>,
    /// Core indices of the long-task (CFS) group.
    pub cfs_cores: Vec<usize>,
    /// CPU-time limit before a process migrates to the CFS group.
    pub limit: Duration,
    /// Real-time priority used for the FIFO class (1..=99).
    pub fifo_priority: i32,
}

impl HostConfig {
    /// Splits the first `fifo + cfs` host cores into two groups.
    ///
    /// # Panics
    ///
    /// Panics if either group is empty or they would overlap.
    pub fn split(fifo: usize, cfs: usize, limit: Duration) -> Self {
        assert!(fifo > 0 && cfs > 0, "both groups must be non-empty");
        HostConfig {
            fifo_cores: (0..fifo).collect(),
            cfs_cores: (fifo..fifo + cfs).collect(),
            limit,
            fifo_priority: 10,
        }
    }

    fn validate(&self) {
        assert!(!self.fifo_cores.is_empty() && !self.cfs_cores.is_empty());
        for c in &self.fifo_cores {
            assert!(!self.cfs_cores.contains(c), "core groups must be disjoint");
        }
        assert!((1..=99).contains(&self.fifo_priority), "bad rt priority");
    }
}

/// Lifecycle events emitted by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEvent {
    /// Process launched onto the FIFO group.
    Launched(Pid),
    /// Process exceeded the limit and moved to the CFS group.
    Migrated(Pid),
    /// Process exited.
    Finished(Pid),
}

/// Final record of one managed function process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRecord {
    /// The process id.
    pub pid: Pid,
    /// Wall-clock lifetime from spawn to reap.
    pub wall: Duration,
    /// CPU time at the last observation before exit.
    pub cpu: Duration,
    /// Whether the process was migrated to the CFS group.
    pub migrated: bool,
}

struct Managed {
    child: Child,
    spawned: Instant,
    last_cpu: Duration,
    migrated: bool,
}

/// A user-space hybrid FIFO→CFS controller over live processes.
///
/// Not a kernel scheduler: within each group the kernel still arbitrates.
/// What it reproduces is the paper's *placement* policy — who runs in
/// which class on which cores, and when a process changes group.
pub struct HybridHostController {
    cfg: HostConfig,
    procs: Mutex<Vec<Managed>>,
    records: Mutex<Vec<HostRecord>>,
    events_tx: Sender<HostEvent>,
    events_rx: Receiver<HostEvent>,
    fifo_policy_effective: Mutex<Option<SchedPolicy>>,
}

impl HybridHostController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (empty or overlapping groups).
    pub fn new(cfg: HostConfig) -> Self {
        cfg.validate();
        let (events_tx, events_rx) = unbounded();
        HybridHostController {
            cfg,
            procs: Mutex::new(Vec::new()),
            records: Mutex::new(Vec::new()),
            events_tx,
            events_rx,
            fifo_policy_effective: Mutex::new(None),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// A receiver of lifecycle events (clone freely).
    pub fn events(&self) -> Receiver<HostEvent> {
        self.events_rx.clone()
    }

    /// The scheduling policy the FIFO group actually got (`Fifo` when
    /// privileged, `Other` after fallback); `None` before the first launch.
    pub fn effective_fifo_policy(&self) -> Option<SchedPolicy> {
        *self.fifo_policy_effective.lock()
    }

    /// Launches `command` onto the FIFO group (Fig. 9 steps ③–④: spawn,
    /// take the pid, direct it into the short-task group).
    ///
    /// # Errors
    ///
    /// Propagates spawn/affinity errors; the policy setter falls back to
    /// CFS when real-time classes are not permitted.
    pub fn launch(&self, mut command: Command) -> io::Result<Pid> {
        let child = command
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        let pid = child.id() as Pid;
        set_affinity(pid, &self.cfg.fifo_cores)?;
        let got = set_policy_or_fallback(pid, SchedPolicy::Fifo(self.cfg.fifo_priority))?;
        *self.fifo_policy_effective.lock() = Some(got);
        self.procs.lock().push(Managed {
            child,
            spawned: Instant::now(),
            last_cpu: Duration::ZERO,
            migrated: false,
        });
        let _ = self.events_tx.send(HostEvent::Launched(pid));
        Ok(pid)
    }

    /// Number of processes still managed (not yet reaped).
    pub fn live(&self) -> usize {
        self.procs.lock().len()
    }

    /// Records of all reaped processes so far.
    pub fn records(&self) -> Vec<HostRecord> {
        self.records.lock().clone()
    }

    /// One monitor pass: reap exited processes and migrate over-limit ones
    /// (the §IV-A time-limit check against `/proc` CPU time).
    ///
    /// Returns the number of processes still alive.
    pub fn poll_once(&self) -> usize {
        let mut procs = self.procs.lock();
        let mut records = self.records.lock();
        let mut i = 0;
        while i < procs.len() {
            let pid = procs[i].child.id() as Pid;
            // Update observed CPU time while the process is alive.
            if let Ok(cpu) = read_proc_cpu(pid) {
                procs[i].last_cpu = cpu.total();
            }
            match procs[i].child.try_wait() {
                Ok(Some(_status)) => {
                    let m = procs.swap_remove(i);
                    records.push(HostRecord {
                        pid,
                        wall: m.spawned.elapsed(),
                        cpu: m.last_cpu,
                        migrated: m.migrated,
                    });
                    let _ = self.events_tx.send(HostEvent::Finished(pid));
                    continue; // do not advance i after swap_remove
                }
                Ok(None) => {}
                Err(_) => {}
            }
            if !procs[i].migrated && procs[i].last_cpu > self.cfg.limit {
                // Migrate: new core set + back to the CFS class.
                let ok_aff = set_affinity(pid, &self.cfg.cfs_cores).is_ok();
                let ok_pol = set_policy_or_fallback(pid, SchedPolicy::Other).is_ok();
                if ok_aff && ok_pol {
                    procs[i].migrated = true;
                    let _ = self.events_tx.send(HostEvent::Migrated(pid));
                }
            }
            i += 1;
        }
        procs.len()
    }

    /// Polls every `interval` until all processes exited or `timeout`
    /// elapses. Returns `true` if everything finished.
    pub fn run_to_completion(&self, interval: Duration, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.poll_once() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(interval);
        }
    }
}

impl Drop for HybridHostController {
    fn drop(&mut self) {
        // Never leak children: kill and reap anything still managed.
        for m in self.procs.lock().iter_mut() {
            let _ = m.child.kill();
            let _ = m.child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_builds_disjoint_groups() {
        let cfg = HostConfig::split(2, 2, Duration::from_millis(100));
        assert_eq!(cfg.fifo_cores, vec![0, 1]);
        assert_eq!(cfg.cfs_cores, vec![2, 3]);
    }

    #[test]
    #[should_panic]
    fn overlapping_groups_rejected() {
        let cfg = HostConfig {
            fifo_cores: vec![0, 1],
            cfs_cores: vec![1, 2],
            limit: Duration::from_millis(1),
            fifo_priority: 10,
        };
        HybridHostController::new(cfg);
    }

    #[test]
    #[should_panic]
    fn bad_priority_rejected() {
        let cfg = HostConfig {
            fifo_cores: vec![0],
            cfs_cores: vec![1],
            limit: Duration::from_millis(1),
            fifo_priority: 0,
        };
        HybridHostController::new(cfg);
    }

    #[test]
    fn controller_manages_a_real_process() {
        // `sleep` burns no CPU, so it must NOT be migrated.
        let cfg = HostConfig::split(1, 1, Duration::from_millis(50));
        let ctl = HybridHostController::new(cfg);
        let mut cmd = Command::new("sleep");
        cmd.arg("0.2");
        let pid = match ctl.launch(cmd) {
            Ok(pid) => pid,
            // Hosts with exotic affinity restrictions: skip.
            Err(e) => {
                eprintln!("skipping: cannot launch/pin ({e})");
                return;
            }
        };
        assert_eq!(ctl.live(), 1);
        // Generous deadline: this can run alongside a whole workspace of
        // parallel test binaries on a loaded CI machine.
        assert!(
            ctl.run_to_completion(Duration::from_millis(20), Duration::from_secs(60)),
            "sleep process did not get reaped within 60s"
        );
        let records = ctl.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].pid, pid);
        assert!(!records[0].migrated, "idle process must not migrate");
        let events: Vec<HostEvent> = ctl.events().try_iter().collect();
        assert!(events.contains(&HostEvent::Launched(pid)));
        assert!(events.contains(&HostEvent::Finished(pid)));
    }
}
