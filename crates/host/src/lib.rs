//! # faas-host
//!
//! The real-OS backend: runs the paper's hybrid placement policy against a
//! live Linux kernel using stock scheduler APIs. Where the simulated stack
//! (`faas-kernel` + `hybrid-scheduler`) reproduces the paper's *numbers*,
//! this crate exercises the same mechanism on real processes:
//!
//! * [`sysapi`] — `sched_setaffinity(2)` / `sched_setscheduler(2)`
//!   wrappers with graceful `SCHED_FIFO`→CFS fallback when the host lacks
//!   `CAP_SYS_NICE`;
//! * [`procstat`] — `/proc/<pid>/stat` CPU-time and `/proc/stat`
//!   utilization monitoring (the psutil daemon of §VI-C);
//! * [`HybridHostController`] — launch function processes pinned to a
//!   FIFO core group, migrate them to the CFS group once their observed
//!   CPU time exceeds the limit (§IV-A on stock APIs);
//! * [`TraceRunner`] — replays a workload file onto the controller at its
//!   inter-arrival times (the Fig. 9 workload generator, live);
//! * [`UtilizationMonitor`] / [`HostRightsizer`] — the §VI-C utilization
//!   daemon (a `/proc/stat` sampler thread) feeding the same rightsizing
//!   decision logic the simulator uses;
//! * [`calibrate`] — live Fibonacci calibration (§V-B) to anchor the
//!   `azure-trace` duration model to the current machine;
//! * the `fib-workload` binary — the paper's CPU-bound function stand-in.
//!
//! This crate intentionally contains the workspace's only `unsafe` code
//! (FFI to the scheduling syscalls), kept to `sysapi`/`procstat`.

#![warn(missing_docs)]

pub mod calibrate;
mod controller;
mod ffi;
mod monitor;
pub mod procstat;
mod runner;
pub mod sync;
pub mod sysapi;

pub use controller::{HostConfig, HostEvent, HostRecord, HybridHostController};
pub use monitor::{HostRightsizer, UtilizationMonitor, UtilizationSnapshot};
pub use runner::{PlannedLaunch, TraceRunner};
pub use sysapi::{
    can_use_realtime, get_affinity, get_policy, num_cpus_configured, set_affinity, set_policy,
    set_policy_or_fallback, Pid, SchedPolicy, SysError,
};
