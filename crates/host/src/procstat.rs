//! `/proc`-based runtime monitoring.
//!
//! The paper's user-space agent decides migrations from observed runtimes
//! and a psutil daemon feeds CPU utilization through shared memory (§VI-C).
//! On a plain Linux host the same signals come from `/proc/<pid>/stat`
//! (per-process CPU ticks) and `/proc/stat` (per-core counters).

use std::fs;
use std::io;
use std::time::Duration;

use crate::ffi as libc;
use crate::sysapi::Pid;

/// Per-process CPU usage snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcCpu {
    /// User-mode CPU time consumed so far.
    pub utime: Duration,
    /// Kernel-mode CPU time consumed so far.
    pub stime: Duration,
    /// Single-character process state (`R`, `S`, `Z`, …).
    pub state: char,
}

impl ProcCpu {
    /// Total CPU time (user + system).
    pub fn total(&self) -> Duration {
        self.utime + self.stime
    }
}

fn ticks_per_second() -> u64 {
    // SAFETY: sysconf is always safe to call.
    let t = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    if t <= 0 {
        100
    } else {
        t as u64
    }
}

fn ticks_to_duration(ticks: u64) -> Duration {
    let tps = ticks_per_second();
    Duration::from_nanos(ticks.saturating_mul(1_000_000_000 / tps))
}

/// Parses the body of `/proc/<pid>/stat`.
///
/// The second field (`comm`) may contain spaces and parentheses, so fields
/// are located relative to the *last* `)` as the proc(5) man page advises.
///
/// # Errors
///
/// `InvalidData` on malformed content.
pub fn parse_proc_stat(content: &str) -> io::Result<ProcCpu> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("stat: {what}"));
    let close = content.rfind(')').ok_or_else(|| bad("missing ')'"))?;
    let rest = content[close + 1..].trim();
    let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
    // rest[0] is field 3 (state); utime/stime are fields 14/15 overall,
    // i.e. indices 11/12 in `rest`.
    if fields.len() < 13 {
        return Err(bad("too few fields"));
    }
    let state = fields[0].chars().next().ok_or_else(|| bad("empty state"))?;
    let utime: u64 = fields[11].parse().map_err(|_| bad("bad utime"))?;
    let stime: u64 = fields[12].parse().map_err(|_| bad("bad stime"))?;
    Ok(ProcCpu {
        utime: ticks_to_duration(utime),
        stime: ticks_to_duration(stime),
        state,
    })
}

/// Reads the CPU usage of a live process.
///
/// # Errors
///
/// `NotFound`-like OS errors when the process is gone, `InvalidData` on
/// parse failure.
pub fn read_proc_cpu(pid: Pid) -> io::Result<ProcCpu> {
    let content = fs::read_to_string(format!("/proc/{pid}/stat"))?;
    parse_proc_stat(&content)
}

/// One core's counters from `/proc/stat` (jiffies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreTicks {
    /// Busy jiffies (user + nice + system + irq + softirq + steal).
    pub busy: u64,
    /// Idle jiffies (idle + iowait).
    pub idle: u64,
}

impl CoreTicks {
    /// Utilization between two snapshots of the same core, in `[0, 1]`.
    pub fn utilization_since(&self, earlier: &CoreTicks) -> f64 {
        let busy = self.busy.saturating_sub(earlier.busy);
        let idle = self.idle.saturating_sub(earlier.idle);
        let total = busy + idle;
        if total == 0 {
            return 0.0;
        }
        busy as f64 / total as f64
    }
}

/// Parses per-core lines (`cpu0 …`, `cpu1 …`) of `/proc/stat` content.
///
/// # Errors
///
/// `InvalidData` when no per-core line parses.
pub fn parse_core_ticks(content: &str) -> io::Result<Vec<CoreTicks>> {
    let mut out = Vec::new();
    for line in content.lines() {
        let mut parts = line.split_ascii_whitespace();
        let Some(label) = parts.next() else { continue };
        if !label.starts_with("cpu") || label == "cpu" {
            continue;
        }
        let nums: Vec<u64> = parts.filter_map(|p| p.parse().ok()).collect();
        if nums.len() < 5 {
            continue;
        }
        // user nice system idle iowait irq softirq steal guest guest_nice;
        // guest/guest_nice are already folded into user/nice by the
        // kernel, so summing past column 7 would double-count them.
        let idle = nums[3] + nums.get(4).copied().unwrap_or(0);
        let busy: u64 = nums
            .iter()
            .take(8)
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 4)
            .map(|(_, v)| v)
            .sum();
        out.push(CoreTicks { busy, idle });
    }
    if out.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no per-core cpu lines",
        ));
    }
    Ok(out)
}

/// Reads the current per-core counters of this host.
///
/// # Errors
///
/// Propagates `/proc/stat` I/O and parse errors.
pub fn read_core_ticks() -> io::Result<Vec<CoreTicks>> {
    parse_core_ticks(&fs::read_to_string("/proc/stat")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_typical_stat_line() {
        // comm with spaces and parens — the hostile case.
        let line = "1234 (my (we)ird name) R 1 1 1 0 -1 4194304 100 0 0 0 250 50 0 0 20 0 1 0 100 1000000 100 18446744073709551615 0 0 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0";
        let cpu = parse_proc_stat(line).unwrap();
        assert_eq!(cpu.state, 'R');
        // 250 + 50 ticks at USER_HZ.
        let tps = super::ticks_per_second();
        assert_eq!(
            cpu.total(),
            Duration::from_nanos(300 * (1_000_000_000 / tps))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_proc_stat("no parens here").is_err());
        assert!(parse_proc_stat("1 (x) R 2 3").is_err());
    }

    #[test]
    fn read_own_cpu_time() {
        let me = std::process::id() as Pid;
        // Burn a little CPU so the counters are non-trivial.
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let cpu = read_proc_cpu(me).expect("read own /proc stat");
        assert!(cpu.state == 'R' || cpu.state == 'S');
    }

    #[test]
    fn parse_core_ticks_lines() {
        let content = "cpu  100 0 100 800 0 0 0 0 0 0\n\
                       cpu0 50 0 50 400 0 0 0 0 0 0\n\
                       cpu1 50 0 50 400 10 0 0 0 0 0\n\
                       intr 12345\n";
        let cores = parse_core_ticks(content).unwrap();
        assert_eq!(cores.len(), 2);
        assert_eq!(
            cores[0],
            CoreTicks {
                busy: 100,
                idle: 400
            }
        );
        assert_eq!(
            cores[1],
            CoreTicks {
                busy: 100,
                idle: 410
            }
        );
    }

    #[test]
    fn guest_ticks_are_not_double_counted() {
        // guest (30) and guest_nice (5) are already inside user/nice.
        let content = "cpu0 80 10 40 500 20 5 5 10 30 5\n";
        let cores = parse_core_ticks(content).unwrap();
        // busy = user+nice+system+irq+softirq+steal = 80+10+40+5+5+10.
        assert_eq!(
            cores[0],
            CoreTicks {
                busy: 150,
                idle: 520
            }
        );
    }

    #[test]
    fn utilization_between_snapshots() {
        let a = CoreTicks {
            busy: 100,
            idle: 100,
        };
        let b = CoreTicks {
            busy: 175,
            idle: 125,
        };
        assert!((b.utilization_since(&a) - 0.75).abs() < 1e-12);
        assert_eq!(a.utilization_since(&a), 0.0);
    }

    #[test]
    fn read_host_core_ticks() {
        let cores = read_core_ticks().expect("host /proc/stat");
        assert!(!cores.is_empty());
    }
}
