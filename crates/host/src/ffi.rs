//! Minimal in-tree replacement for the `libc` crate.
//!
//! The build environment is offline, so instead of depending on `libc`
//! this module declares exactly the symbols the host backend needs: the
//! `sched_*` syscall wrappers, `sysconf`, and the `cpu_set_t` bit-set
//! helpers. Names and signatures mirror the `libc` crate so the calling
//! code reads identically.
//!
//! On non-Linux targets the same symbols exist but every call fails (the
//! whole crate is a live-Linux backend; see the crate docs). That keeps
//! `cargo build --workspace` green on any platform while making the
//! platform gap explicit at run time rather than compile time.

#![allow(non_camel_case_types, non_snake_case)]

/// A process id (`pid_t`).
pub type pid_t = i32;

/// C `long`: pointer-sized on every Linux ABI this crate targets.
#[cfg(target_pointer_width = "64")]
pub type c_long = i64;
/// C `long`: pointer-sized on every Linux ABI this crate targets.
#[cfg(target_pointer_width = "32")]
pub type c_long = i32;

/// `SCHED_OTHER` — the CFS class.
pub const SCHED_OTHER: i32 = 0;
/// `SCHED_FIFO` — the real-time FIFO class.
pub const SCHED_FIFO: i32 = 1;
/// `SCHED_RR` — the real-time round-robin class.
pub const SCHED_RR: i32 = 2;
/// `SCHED_BATCH` — the batch variant of CFS.
pub const SCHED_BATCH: i32 = 3;

/// `EPERM` — operation not permitted.
pub const EPERM: i32 = 1;
/// `EINVAL` — invalid argument.
pub const EINVAL: i32 = 22;
/// `ENOSYS` — syscall not implemented (sandboxed kernels).
pub const ENOSYS: i32 = 38;

/// `sysconf(3)` name for the configured processor count (glibc/musl value).
pub const _SC_NPROCESSORS_CONF: i32 = 83;
/// `sysconf(3)` name for clock ticks per second (glibc/musl value).
pub const _SC_CLK_TCK: i32 = 2;

/// Number of CPUs representable in a [`cpu_set_t`] (glibc `CPU_SETSIZE`).
pub const CPU_SETSIZE: usize = 1024;

/// The kernel CPU affinity bit-set (`cpu_set_t`): 1024 bits as machine
/// words, identical in size and layout to glibc's definition.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE / 64],
}

/// Clears every CPU in the set.
///
/// # Safety
///
/// Always safe; `unsafe` only mirrors the `libc` crate's signature.
pub unsafe fn CPU_ZERO(cpuset: &mut cpu_set_t) {
    cpuset.bits = [0; CPU_SETSIZE / 64];
}

/// Adds `cpu` to the set. Out-of-range indices are ignored, as in glibc.
///
/// # Safety
///
/// Always safe; `unsafe` only mirrors the `libc` crate's signature.
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE {
        cpuset.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// Tests whether `cpu` is in the set; out-of-range indices are `false`.
///
/// # Safety
///
/// Always safe; `unsafe` only mirrors the `libc` crate's signature.
pub unsafe fn CPU_ISSET(cpu: usize, cpuset: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE && cpuset.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

/// `sched_param` for `sched_setscheduler(2)`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sched_param {
    /// Real-time priority (`1..=99` for the RT classes, 0 otherwise).
    pub sched_priority: i32,
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const cpu_set_t) -> i32;
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: usize, mask: *mut cpu_set_t) -> i32;
    pub fn sched_setscheduler(pid: pid_t, policy: i32, param: *const sched_param) -> i32;
    pub fn sched_getscheduler(pid: pid_t) -> i32;
    pub fn sched_getparam(pid: pid_t, param: *mut sched_param) -> i32;
    pub fn sysconf(name: i32) -> c_long;
}

// Non-Linux stubs: same surface, every scheduling call reports failure and
// sysconf falls back to "unknown" so callers use their defaults.
#[cfg(not(target_os = "linux"))]
mod stubs {
    use super::{cpu_set_t, pid_t, sched_param};

    pub unsafe fn sched_setaffinity(_: pid_t, _: usize, _: *const cpu_set_t) -> i32 {
        -1
    }
    pub unsafe fn sched_getaffinity(_: pid_t, _: usize, _: *mut cpu_set_t) -> i32 {
        -1
    }
    pub unsafe fn sched_setscheduler(_: pid_t, _: i32, _: *const sched_param) -> i32 {
        -1
    }
    pub unsafe fn sched_getscheduler(_: pid_t) -> i32 {
        -1
    }
    pub unsafe fn sched_getparam(_: pid_t, _: *mut sched_param) -> i32 {
        -1
    }
    pub unsafe fn sysconf(_: i32) -> super::c_long {
        -1
    }
}
#[cfg(not(target_os = "linux"))]
pub use stubs::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_roundtrip() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(0, &set));
            CPU_SET(0, &mut set);
            CPU_SET(63, &mut set);
            CPU_SET(64, &mut set);
            CPU_SET(1023, &mut set);
            CPU_SET(4096, &mut set); // ignored, out of range
            assert!(CPU_ISSET(0, &set));
            assert!(CPU_ISSET(63, &set));
            assert!(CPU_ISSET(64, &set));
            assert!(CPU_ISSET(1023, &set));
            assert!(!CPU_ISSET(1, &set));
            assert!(!CPU_ISSET(4096, &set));
        }
    }

    #[test]
    fn cpu_set_layout_matches_glibc() {
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128);
    }
}
