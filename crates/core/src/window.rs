//! Sliding window of recent task durations (§IV-B).
//!
//! The paper keeps "the most recent 100 function durations" and derives the
//! FIFO preemption time limit as a configurable percentile of that window.

use faas_simcore::SimDuration;

/// Fixed-capacity ring buffer of recent durations with percentile queries.
///
/// # Examples
///
/// ```
/// use hybrid_scheduler::SlidingWindow;
/// use faas_simcore::SimDuration;
///
/// let mut w = SlidingWindow::new(100);
/// for ms in 1..=100 {
///     w.push(SimDuration::from_millis(ms));
/// }
/// assert_eq!(w.percentile(0.90), Some(SimDuration::from_millis(90)));
/// assert_eq!(w.percentile(0.50), Some(SimDuration::from_millis(50)));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: Vec<SimDuration>,
    capacity: usize,
    next: usize,
}

impl SlidingWindow {
    /// Creates a window remembering the last `capacity` durations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Records a duration, evicting the oldest when full.
    pub fn push(&mut self, d: SimDuration) {
        if self.buf.len() < self.capacity {
            self.buf.push(d);
        } else {
            self.buf[self.next] = d;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of durations currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no duration has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of durations remembered.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nearest-rank percentile of the stored durations.
    ///
    /// `p` is a fraction in `[0, 1]`; e.g. `0.95` for the paper's best-
    /// performing limit (Fig. 15). Returns `None` while the window is empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile fraction must be in [0,1]"
        );
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_unstable();
        // Nearest-rank: ceil(p * n), 1-based; p = 0 maps to the minimum.
        let n = sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_window_has_no_percentile() {
        let w = SlidingWindow::new(10);
        assert!(w.is_empty());
        assert_eq!(w.percentile(0.5), None);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = SlidingWindow::new(3);
        for v in [1, 2, 3, 4, 5] {
            w.push(ms(v));
        }
        assert_eq!(w.len(), 3);
        // Window now holds {3,4,5}.
        assert_eq!(w.percentile(0.0), Some(ms(3)));
        assert_eq!(w.percentile(1.0), Some(ms(5)));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut w = SlidingWindow::new(100);
        for v in 1..=100 {
            w.push(ms(v));
        }
        assert_eq!(w.percentile(0.25), Some(ms(25)));
        assert_eq!(w.percentile(0.75), Some(ms(75)));
        assert_eq!(w.percentile(0.95), Some(ms(95)));
        assert_eq!(w.percentile(1.0), Some(ms(100)));
    }

    #[test]
    fn single_element_answers_everything() {
        let mut w = SlidingWindow::new(5);
        w.push(ms(42));
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(w.percentile(p), Some(ms(42)));
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut w = SlidingWindow::new(10);
        for v in [50, 10, 90, 30, 70] {
            w.push(ms(v));
        }
        assert_eq!(w.percentile(0.5), Some(ms(50)));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_percentile_rejected() {
        let mut w = SlidingWindow::new(2);
        w.push(ms(1));
        let _ = w.percentile(1.5);
    }
}
