//! CPU-group rightsizing (§IV-B, Figs. 8/18/19).
//!
//! A utilization monitor compares the two core groups over a trailing
//! window; when the gap exceeds a threshold, one core migrates from the
//! under-utilized group to the overloaded one so that capacity follows
//! load and neither group idles. (The paper's prose says cores move "from
//! the highly-utilized group to the under-utilized group"; its mechanism
//! description and Fig. 19 show capacity being *added* where load is — we
//! implement that reading.)
//!
//! The CFS→FIFO migration follows the five-step protocol of Fig. 8:
//! **lock** the core, **preempt** its running task, **migrate** its queue
//! to the remaining CFS cores, **transition** the core's policy, and
//! **unlock** it. [`MigrationReport`] records the steps for observability
//! and protocol tests.

use faas_kernel::CoreId;
use faas_simcore::{SimDuration, SimTime};

use crate::config::RightsizingConfig;

/// Which way a core should move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDirection {
    /// Grow the FIFO group (CFS donates a core) — Fig. 8's direction.
    CfsToFifo,
    /// Grow the CFS group (FIFO donates a core).
    FifoToCfs,
}

/// One step of the Fig. 8 migration protocol, as executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationStep {
    /// Step 1: the core is locked; no new task may be assigned to it.
    Lock(CoreId),
    /// Step 2: the task occupying the core (if any) was preempted.
    PreemptRunning(Option<faas_kernel::TaskId>),
    /// Step 3: `tasks` queued on the core were redistributed to siblings.
    RedistributeQueue(usize),
    /// Step 4: the core switched policy group.
    PolicyTransition(MigrationDirection),
    /// Step 5: the core is unlocked and accepts tasks under its new policy.
    Unlock(CoreId),
}

/// Record of one executed core migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// When the migration happened.
    pub at: SimTime,
    /// The migrated core.
    pub core: CoreId,
    /// Direction of the move.
    pub direction: MigrationDirection,
    /// The protocol steps in execution order.
    pub steps: Vec<MigrationStep>,
}

impl MigrationReport {
    /// Validates the Fig. 8 protocol ordering: lock first, unlock last,
    /// preemption before queue redistribution before the policy switch.
    pub fn follows_protocol(&self) -> bool {
        let order: Vec<u8> = self
            .steps
            .iter()
            .map(|s| match s {
                MigrationStep::Lock(_) => 0,
                MigrationStep::PreemptRunning(_) => 1,
                MigrationStep::RedistributeQueue(_) => 2,
                MigrationStep::PolicyTransition(_) => 3,
                MigrationStep::Unlock(_) => 4,
            })
            .collect();
        order == [0, 1, 2, 3, 4]
    }
}

/// The utilization-gap decision logic, separated from execution for unit
/// testing.
#[derive(Debug, Clone)]
pub struct RightsizingController {
    cfg: RightsizingConfig,
    last_migration: Option<SimTime>,
}

impl RightsizingController {
    /// Creates a controller with the given configuration.
    pub fn new(cfg: RightsizingConfig) -> Self {
        RightsizingController {
            cfg,
            last_migration: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RightsizingConfig {
        &self.cfg
    }

    /// Trailing window used for the utilization average.
    pub fn window(&self) -> SimDuration {
        self.cfg.window
    }

    /// Decides whether to migrate a core given the two groups' windowed
    /// utilizations and current sizes. Returns `None` while in cooldown,
    /// when the gap is below threshold, or when the donor group is at its
    /// minimum size.
    pub fn decide(
        &self,
        now: SimTime,
        fifo_util: f64,
        cfs_util: f64,
        fifo_cores: usize,
        cfs_cores: usize,
    ) -> Option<MigrationDirection> {
        if let Some(last) = self.last_migration {
            if now.saturating_since(last) < self.cfg.cooldown {
                return None;
            }
        }
        let gap = fifo_util - cfs_util;
        if gap > self.cfg.threshold && cfs_cores > self.cfg.min_cores {
            // FIFO group overloaded: CFS donates a core.
            Some(MigrationDirection::CfsToFifo)
        } else if -gap > self.cfg.threshold && fifo_cores > self.cfg.min_cores {
            // CFS group overloaded: FIFO donates a core.
            Some(MigrationDirection::FifoToCfs)
        } else {
            None
        }
    }

    /// Records that a migration was executed at `now` (starts the cooldown).
    pub fn note_migration(&mut self, now: SimTime) {
        self.last_migration = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> RightsizingController {
        RightsizingController::new(RightsizingConfig {
            window: SimDuration::from_secs(2),
            threshold: 0.15,
            cooldown: SimDuration::from_millis(500),
            min_cores: 1,
        })
    }

    #[test]
    fn no_migration_below_threshold() {
        let c = controller();
        assert_eq!(c.decide(SimTime::from_secs(10), 0.9, 0.85, 25, 25), None);
    }

    #[test]
    fn fifo_overload_pulls_core_from_cfs() {
        let c = controller();
        assert_eq!(
            c.decide(SimTime::from_secs(10), 0.99, 0.40, 25, 25),
            Some(MigrationDirection::CfsToFifo)
        );
    }

    #[test]
    fn cfs_overload_pulls_core_from_fifo() {
        let c = controller();
        assert_eq!(
            c.decide(SimTime::from_secs(10), 0.30, 0.97, 25, 25),
            Some(MigrationDirection::FifoToCfs)
        );
    }

    #[test]
    fn donor_group_respects_min_cores() {
        let c = controller();
        // CFS would donate but is at its minimum.
        assert_eq!(c.decide(SimTime::from_secs(10), 0.99, 0.10, 49, 1), None);
        assert_eq!(c.decide(SimTime::from_secs(10), 0.10, 0.99, 1, 49), None);
    }

    #[test]
    fn cooldown_suppresses_back_to_back_migrations() {
        let mut c = controller();
        c.note_migration(SimTime::from_millis(1_000));
        assert_eq!(
            c.decide(SimTime::from_millis(1_200), 0.99, 0.10, 25, 25),
            None
        );
        assert!(c
            .decide(SimTime::from_millis(1_600), 0.99, 0.10, 25, 25)
            .is_some());
    }

    #[test]
    fn protocol_validation() {
        let report = MigrationReport {
            at: SimTime::ZERO,
            core: CoreId::from_index(2),
            direction: MigrationDirection::CfsToFifo,
            steps: vec![
                MigrationStep::Lock(CoreId::from_index(2)),
                MigrationStep::PreemptRunning(None),
                MigrationStep::RedistributeQueue(3),
                MigrationStep::PolicyTransition(MigrationDirection::CfsToFifo),
                MigrationStep::Unlock(CoreId::from_index(2)),
            ],
        };
        assert!(report.follows_protocol());

        let bad = MigrationReport {
            steps: vec![
                MigrationStep::PreemptRunning(None),
                MigrationStep::Lock(CoreId::from_index(2)),
                MigrationStep::RedistributeQueue(0),
                MigrationStep::PolicyTransition(MigrationDirection::CfsToFifo),
                MigrationStep::Unlock(CoreId::from_index(2)),
            ],
            ..report
        };
        assert!(!bad.follows_protocol());
    }
}
