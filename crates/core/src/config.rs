//! Configuration of the hybrid scheduler.

use faas_simcore::SimDuration;

/// How the FIFO preemption time limit is chosen (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeLimitPolicy {
    /// A constant limit, e.g. the paper's 1,633 ms (the offline p90 of the
    /// sampled workload).
    Fixed(SimDuration),
    /// Track a percentile of the sliding window of recent task durations.
    Adaptive {
        /// Percentile fraction in `(0, 1]`, e.g. `0.95` (best in Fig. 15).
        percentile: f64,
        /// Limit used until the window has collected enough samples.
        initial: SimDuration,
    },
}

impl TimeLimitPolicy {
    /// The paper's default fixed limit: 1,633 ms (p90 of the sampled trace).
    pub fn paper_default() -> Self {
        TimeLimitPolicy::Fixed(SimDuration::from_millis(1_633))
    }
}

/// How migrated tasks are placed across the CFS-side per-core queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CfsPlacement {
    /// The paper's choice (§IV-A): spread round-robin.
    #[default]
    RoundRobin,
    /// Ablation: always the currently shortest queue.
    LeastLoaded,
}

/// Configuration of the CPU-group rightsizing controller (§IV-B, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RightsizingConfig {
    /// Trailing window over which group utilization is averaged.
    pub window: SimDuration,
    /// Minimum utilization gap that triggers a core migration.
    pub threshold: f64,
    /// Minimum spacing between two migrations.
    pub cooldown: SimDuration,
    /// Neither group ever shrinks below this many cores.
    pub min_cores: usize,
}

impl Default for RightsizingConfig {
    fn default() -> Self {
        RightsizingConfig {
            window: SimDuration::from_secs(2),
            threshold: 0.15,
            cooldown: SimDuration::from_millis(500),
            min_cores: 1,
        }
    }
}

/// Full configuration of the [`HybridScheduler`](crate::HybridScheduler).
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Cores initially assigned to the FIFO (short-task) group.
    pub fifo_cores: usize,
    /// Cores initially assigned to the CFS (long-task) group.
    pub cfs_cores: usize,
    /// FIFO preemption limit policy.
    pub time_limit: TimeLimitPolicy,
    /// Size of the sliding window of recent durations (paper: 100).
    pub window_size: usize,
    /// Minimum samples before an adaptive limit kicks in.
    pub min_samples: usize,
    /// Floor for any adaptive limit (guards against degenerate windows).
    pub min_limit: SimDuration,
    /// CFS parameters for the long-task group.
    pub sched_latency: SimDuration,
    /// CFS minimum slice for the long-task group.
    pub min_granularity: SimDuration,
    /// Enable dynamic CPU-group rightsizing.
    pub rightsizing: Option<RightsizingConfig>,
    /// Monitoring tick (drives rightsizing decisions and timeline samples).
    pub tick: SimDuration,
    /// Placement of migrated tasks on the CFS side.
    pub cfs_placement: CfsPlacement,
    /// Honor [`PlacementHint::Background`](faas_kernel::PlacementHint):
    /// background-hinted tasks (e.g. microVM VMM/I-O threads) skip the
    /// FIFO stage and go straight to the CFS group — the paper's §VII-4
    /// future work.
    pub honor_hints: bool,
}

impl HybridConfig {
    /// The paper's main configuration: a 25/25 split with the fixed
    /// 1,633 ms limit (Figs. 11–14).
    pub fn paper_25_25() -> Self {
        HybridConfig::split(25, 25)
    }

    /// A `fifo`/`cfs` split with paper defaults otherwise.
    ///
    /// # Panics
    ///
    /// Panics if either group is empty.
    pub fn split(fifo: usize, cfs: usize) -> Self {
        assert!(fifo > 0 && cfs > 0, "both core groups must be non-empty");
        HybridConfig {
            fifo_cores: fifo,
            cfs_cores: cfs,
            time_limit: TimeLimitPolicy::paper_default(),
            window_size: 100,
            min_samples: 10,
            min_limit: SimDuration::from_millis(1),
            sched_latency: SimDuration::from_millis(24),
            min_granularity: SimDuration::from_millis(3),
            rightsizing: None,
            tick: SimDuration::from_millis(100),
            cfs_placement: CfsPlacement::RoundRobin,
            honor_hints: false,
        }
    }

    /// Total number of cores the scheduler expects the machine to have.
    pub fn total_cores(&self) -> usize {
        self.fifo_cores + self.cfs_cores
    }

    /// Sets the time-limit policy.
    pub fn with_time_limit(mut self, policy: TimeLimitPolicy) -> Self {
        self.time_limit = policy;
        self
    }

    /// Enables rightsizing with the given controller configuration.
    pub fn with_rightsizing(mut self, cfg: RightsizingConfig) -> Self {
        self.rightsizing = Some(cfg);
        self
    }

    /// Selects the CFS-side placement strategy (ablation knob).
    pub fn with_cfs_placement(mut self, placement: CfsPlacement) -> Self {
        self.cfs_placement = placement;
        self
    }

    /// Enables background-hint routing (§VII-4 future work).
    pub fn with_hint_routing(mut self) -> Self {
        self.honor_hints = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = HybridConfig::paper_25_25();
        assert_eq!(c.total_cores(), 50);
        assert_eq!(
            c.time_limit,
            TimeLimitPolicy::Fixed(SimDuration::from_millis(1_633))
        );
        assert_eq!(c.window_size, 100);
        assert!(c.rightsizing.is_none());
        assert_eq!(c.cfs_placement, CfsPlacement::RoundRobin);
        assert!(!c.honor_hints, "hint routing is an opt-in extension");
    }

    #[test]
    fn builders_compose() {
        let c = HybridConfig::split(10, 40)
            .with_time_limit(TimeLimitPolicy::Adaptive {
                percentile: 0.95,
                initial: SimDuration::from_millis(1_633),
            })
            .with_rightsizing(RightsizingConfig::default());
        assert_eq!(c.fifo_cores, 10);
        assert!(matches!(c.time_limit, TimeLimitPolicy::Adaptive { .. }));
        assert!(c.rightsizing.is_some());
    }

    #[test]
    #[should_panic]
    fn empty_group_rejected() {
        let _ = HybridConfig::split(0, 50);
    }
}
