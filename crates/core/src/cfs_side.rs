//! The long-task (CFS) side of the hybrid scheduler.
//!
//! Per-core vruntime queues with *dynamic membership*: cores join and leave
//! as the rightsizing controller moves them between groups (§IV-B). The
//! scheduling logic matches `faas_policies::Cfs` (placement at
//! `min_vruntime`, latency-target slices, stealing), re-implemented here
//! because membership churn requires queue hand-off primitives a fixed-set
//! policy does not need.

use faas_kernel::{Machine, TaskId};
use faas_simcore::{MinHeap4, SimDuration};

#[derive(Debug, Default)]
struct Rq {
    /// Runnable tasks keyed by (vruntime, id) in a dense 4-ary heap —
    /// keys are unique, so `pop_min`/`take_max` reproduce the old
    /// `BTreeSet` iteration-order picks exactly, without per-insert node
    /// allocation.
    queue: MinHeap4<(i64, TaskId)>,
    min_vruntime: i64,
}

/// Dynamic-membership CFS run queues.
///
/// `rqs` is a dense vector indexed by core id (`None` = not a member).
/// `steal_into` and `balance` pick victims by iterating it, so iteration
/// order must be deterministic — a `HashMap` here once made tie-breaks,
/// and therefore whole simulations, nondeterministic across runs. The
/// dense layout also makes the per-dispatch queue lookups O(1).
#[derive(Debug)]
pub(crate) struct CfsSide {
    rqs: Vec<Option<Rq>>,
    /// vruntime offset per task: effective vr = offset + cpu_time.
    /// Dense, indexed by `TaskId::index()` (task ids are assigned densely
    /// by the kernel); absent entries read as 0, matching the old
    /// `HashMap::get(..).unwrap_or(0)` behavior without hashing on the
    /// enqueue/requeue hot path.
    offsets: Vec<i64>,
    sched_latency: SimDuration,
    min_granularity: SimDuration,
    /// Smallest runnable count at which the slice formula bottoms out at
    /// `min_granularity` (skips the division on the dispatch hot path).
    slice_floor_nr: u64,
}

impl CfsSide {
    pub(crate) fn new(sched_latency: SimDuration, min_granularity: SimDuration) -> Self {
        assert!(
            !min_granularity.is_zero(),
            "min_granularity must be positive"
        );
        CfsSide {
            rqs: Vec::new(),
            offsets: Vec::new(),
            sched_latency,
            min_granularity,
            slice_floor_nr: sched_latency
                .as_micros()
                .div_ceil(min_granularity.as_micros()),
        }
    }

    pub(crate) fn add_core(&mut self, core: usize) {
        if core >= self.rqs.len() {
            self.rqs.resize_with(core + 1, || None);
        }
        if self.rqs[core].is_none() {
            self.rqs[core] = Some(Rq::default());
        }
    }

    /// Removes a core, returning its queued tasks in vruntime order.
    pub(crate) fn remove_core(&mut self, core: usize) -> Vec<TaskId> {
        match self.rqs.get_mut(core).and_then(Option::take) {
            Some(rq) => rq
                .queue
                .into_sorted_vec()
                .into_iter()
                .map(|(_, t)| t)
                .collect(),
            None => Vec::new(),
        }
    }

    pub(crate) fn has_core(&self, core: usize) -> bool {
        matches!(self.rqs.get(core), Some(Some(_)))
    }

    pub(crate) fn queue_len(&self, core: usize) -> usize {
        match self.rqs.get(core) {
            Some(Some(r)) => r.queue.len(),
            _ => 0,
        }
    }

    /// Total queued tasks across all member cores.
    pub(crate) fn total_queued(&self) -> usize {
        self.rqs.iter().flatten().map(|r| r.queue.len()).sum()
    }

    /// Iterates `(core, rq)` over member cores in ascending core order.
    fn members(&self) -> impl Iterator<Item = (usize, &Rq)> {
        self.rqs
            .iter()
            .enumerate()
            .filter_map(|(c, rq)| rq.as_ref().map(|r| (c, r)))
    }

    fn rq_mut(&mut self, core: usize) -> Option<&mut Rq> {
        self.rqs.get_mut(core).and_then(Option::as_mut)
    }

    fn effective_vr(&self, m: &Machine, task: TaskId) -> i64 {
        self.offsets.get(task.index()).copied().unwrap_or(0)
            + m.task(task).cpu_time().as_micros() as i64
    }

    /// Enqueues a task entering this core fresh: placed at the core's
    /// `min_vruntime` so it is not starved nor unfairly boosted.
    pub(crate) fn enqueue_new(&mut self, m: &Machine, core: usize, task: TaskId) {
        let cpu = m.task(task).cpu_time().as_micros() as i64;
        let rq = self
            .rqs
            .get_mut(core)
            .and_then(Option::as_mut)
            .expect("enqueue on member core");
        let offset = rq.min_vruntime - cpu;
        rq.queue.push((offset + cpu, task));
        if self.offsets.len() <= task.index() {
            self.offsets.resize(task.index() + 1, 0);
        }
        self.offsets[task.index()] = offset;
    }

    /// Re-enqueues a task that already belongs to this core (slice expiry);
    /// its vruntime advanced by the CPU time it just consumed.
    pub(crate) fn requeue(&mut self, m: &Machine, core: usize, task: TaskId) {
        let vr = self.effective_vr(m, task);
        let rq = self.rq_mut(core).expect("requeue on member core");
        rq.queue.push((vr, task));
    }

    /// Pops the smallest-vruntime task of `core` together with its slice.
    pub(crate) fn pop(&mut self, core: usize) -> Option<(TaskId, SimDuration)> {
        let (sched_latency, min_granularity) = (self.sched_latency, self.min_granularity);
        let rq = self.rq_mut(core)?;
        let key = rq.queue.pop_min()?;
        rq.min_vruntime = rq.min_vruntime.max(key.0);
        let nr = rq.queue.len() as u64 + 1;
        let slice = if nr >= self.slice_floor_nr {
            // The quotient cannot exceed min_granularity here; skip the
            // division on the loaded-queue hot path.
            min_granularity
        } else {
            (sched_latency / nr).max(min_granularity)
        };
        Some((key.1, slice))
    }

    /// Steals the longest-waiting task from the most loaded sibling queue
    /// (length > 1) and enqueues it fresh on `core`. Returns whether a
    /// steal happened.
    pub(crate) fn steal_into(&mut self, m: &Machine, core: usize) -> bool {
        let victim = self
            .members()
            .filter(|&(c, _)| c != core)
            .max_by_key(|(_, rq)| rq.queue.len())
            .map(|(c, rq)| (c, rq.queue.len()));
        match victim {
            Some((v, len)) if len > 1 => {
                let key = self
                    .rq_mut(v)
                    .expect("victim exists")
                    .queue
                    .take_max()
                    .expect("non-empty");
                self.enqueue_new(m, core, key.1);
                true
            }
            _ => false,
        }
    }

    /// Rebalances queues so the longest and shortest differ by at most one
    /// (used after a core joins the group, §IV-B). Returns how many tasks
    /// moved.
    pub(crate) fn balance(&mut self, m: &Machine) -> usize {
        let mut moved = 0;
        loop {
            let (max_c, max_len) = match self.members().max_by_key(|(_, r)| r.queue.len()) {
                Some((c, r)) => (c, r.queue.len()),
                None => return moved,
            };
            let (min_c, min_len) = match self.members().min_by_key(|(_, r)| r.queue.len()) {
                Some((c, r)) => (c, r.queue.len()),
                None => return moved,
            };
            if max_len <= min_len + 1 {
                return moved;
            }
            let key = self
                .rq_mut(max_c)
                .expect("max exists")
                .queue
                .take_max()
                .expect("non-empty");
            self.enqueue_new(m, min_c, key.1);
            moved += 1;
        }
    }
}
