//! # hybrid-scheduler
//!
//! The paper's contribution: a **hybrid two-level scheduling approach** for
//! FaaS that runs short functions to completion under centralized FIFO on
//! one CPU-core group and hands functions that exceed an adaptive time
//! limit to a second group running CFS (Zhao et al., *In Serverless, OS
//! Scheduler Choice Costs Money*, MIDDLEWARE 2024).
//!
//! The crate provides:
//!
//! * [`HybridScheduler`] — the agent itself (§IV-A, Fig. 7);
//! * [`TimeLimitPolicy`] / [`SlidingWindow`] — fixed or percentile-adaptive
//!   FIFO preemption limits over the last 100 task durations (§IV-B);
//! * [`RightsizingConfig`] / [`RightsizingController`] — utilization-driven
//!   CPU-group rightsizing with the Fig. 8 five-step core-migration
//!   protocol, recorded as [`MigrationReport`]s.
//!
//! ```
//! use faas_kernel::{MachineConfig, Simulation, TaskSpec};
//! use faas_simcore::{SimDuration, SimTime};
//! use hybrid_scheduler::{HybridConfig, HybridScheduler};
//!
//! // The paper's 25 FIFO + 25 CFS configuration with the 1,633 ms limit.
//! let cfg = HybridConfig::paper_25_25();
//! let specs: Vec<TaskSpec> = (0..100)
//!     .map(|i| TaskSpec::function(SimTime::from_millis(i), SimDuration::from_millis(40), 128))
//!     .collect();
//! let report = Simulation::new(
//!     MachineConfig::new(cfg.total_cores()),
//!     specs,
//!     HybridScheduler::new(cfg),
//! )
//! .run()?;
//! assert!(report.tasks.iter().all(|t| t.completion().is_some()));
//! # Ok::<(), faas_kernel::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfs_side;
mod config;
mod hybrid;
mod rightsizing;
mod window;

pub use config::{CfsPlacement, HybridConfig, RightsizingConfig, TimeLimitPolicy};
pub use hybrid::{Group, HybridScheduler};
pub use rightsizing::{MigrationDirection, MigrationReport, MigrationStep, RightsizingController};
pub use window::SlidingWindow;
