//! The hybrid two-group FIFO+CFS scheduler — the paper's contribution
//! (§IV, Fig. 7).
//!
//! Tasks first enter a centralized global FIFO queue served by the
//! *short-task* core group and run **without preemption** up to a time
//! limit. A task that exceeds the limit is preempted and migrated to the
//! *long-task* group, whose cores run per-core CFS queues; migrated tasks
//! are spread round-robin (§IV-A). Two provider-side mechanisms keep
//! utilization high (§IV-B): the limit tracks a percentile of the last 100
//! task durations, and a rightsizing controller moves cores between the
//! groups when their utilization diverges.

use std::collections::VecDeque;

use faas_kernel::{CoreId, CoreState, Machine, Scheduler, TaskId};
use faas_simcore::{SimDuration, SimTime};

use crate::cfs_side::CfsSide;
use crate::config::{CfsPlacement, HybridConfig, TimeLimitPolicy};
use crate::rightsizing::{
    MigrationDirection, MigrationReport, MigrationStep, RightsizingController,
};
use crate::window::SlidingWindow;

/// Which policy group a core currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Short-task group: centralized FIFO, no preemption below the limit.
    Fifo,
    /// Long-task group: per-core CFS queues.
    Cfs,
}

/// The hybrid scheduler agent.
///
/// The machine it drives must have exactly
/// [`HybridConfig::total_cores`] cores; cores `0..fifo_cores` start in the
/// FIFO group and the rest in the CFS group (matching the paper's Fig. 13
/// layout, where "the first 25 CPU cores are designated FIFO").
///
/// # Examples
///
/// ```
/// use faas_kernel::{MachineConfig, Simulation, TaskSpec};
/// use faas_simcore::{SimDuration, SimTime};
/// use hybrid_scheduler::{HybridConfig, HybridScheduler, TimeLimitPolicy};
///
/// // 2 FIFO + 2 CFS cores, 50 ms limit: short tasks fly through FIFO,
/// // the long task gets migrated to the CFS side.
/// let cfg = HybridConfig::split(2, 2)
///     .with_time_limit(TimeLimitPolicy::Fixed(SimDuration::from_millis(50)));
/// let mut specs = vec![TaskSpec::function(SimTime::ZERO, SimDuration::from_secs(1), 128)];
/// specs.extend((0..8).map(|i| {
///     TaskSpec::function(SimTime::from_millis(i * 5), SimDuration::from_millis(10), 128)
/// }));
/// let report = Simulation::new(
///     MachineConfig::new(cfg.total_cores()),
///     specs,
///     HybridScheduler::new(cfg),
/// )
/// .run()?;
/// // Short tasks ran uninterrupted…
/// assert!(report.tasks[1..].iter().all(|t| t.preemptions() == 0));
/// // …while the 1 s task was preempted off the FIFO group exactly once.
/// assert!(report.tasks[0].preemptions() >= 1);
/// # Ok::<(), faas_kernel::SimError>(())
/// ```
#[derive(Debug)]
pub struct HybridScheduler {
    cfg: HybridConfig,
    group_of: Vec<Group>,
    fifo_cores: Vec<CoreId>,
    cfs_cores: Vec<CoreId>,
    fifo_queue: VecDeque<TaskId>,
    cfs: CfsSide,
    /// Round-robin pointer for placing migrated tasks (§IV-A).
    rr_next: usize,
    window: SlidingWindow,
    limit: SimDuration,
    limit_history: Vec<(SimTime, SimDuration)>,
    controller: Option<RightsizingController>,
    migrations: Vec<MigrationReport>,
    fifo_size_history: Vec<(SimTime, usize)>,
    tasks_migrated: u64,
    background_routed: u64,
    validated: bool,
}

impl HybridScheduler {
    /// Creates the agent for a machine with `cfg.total_cores()` cores.
    pub fn new(cfg: HybridConfig) -> Self {
        let total = cfg.total_cores();
        let mut group_of = Vec::with_capacity(total);
        let mut fifo_cores = Vec::new();
        let mut cfs_cores = Vec::new();
        let mut cfs = CfsSide::new(cfg.sched_latency, cfg.min_granularity);
        for i in 0..total {
            let id = CoreId::from_index(i);
            if i < cfg.fifo_cores {
                group_of.push(Group::Fifo);
                fifo_cores.push(id);
            } else {
                group_of.push(Group::Cfs);
                cfs_cores.push(id);
                cfs.add_core(i);
            }
        }
        let limit = match cfg.time_limit {
            TimeLimitPolicy::Fixed(d) => d,
            TimeLimitPolicy::Adaptive { initial, .. } => initial,
        };
        assert!(!limit.is_zero(), "time limit must be positive");
        if let TimeLimitPolicy::Adaptive { percentile, .. } = cfg.time_limit {
            assert!(
                percentile > 0.0 && percentile <= 1.0,
                "percentile must be in (0, 1]"
            );
        }
        let controller = cfg.rightsizing.map(RightsizingController::new);
        let window = SlidingWindow::new(cfg.window_size);
        HybridScheduler {
            group_of,
            fifo_cores,
            cfs_cores,
            fifo_queue: VecDeque::new(),
            cfs,
            rr_next: 0,
            window,
            limit,
            limit_history: vec![(SimTime::ZERO, limit)],
            controller,
            migrations: Vec::new(),
            fifo_size_history: vec![(SimTime::ZERO, cfg.fifo_cores)],
            tasks_migrated: 0,
            background_routed: 0,
            validated: false,
            cfg,
        }
    }

    // ---- observability (used by the figure harnesses) -----------------

    /// The current FIFO preemption limit.
    pub fn limit(&self) -> SimDuration {
        self.limit
    }

    /// `(time, limit)` samples, one per limit change (Figs. 16/17).
    pub fn limit_history(&self) -> &[(SimTime, SimDuration)] {
        &self.limit_history
    }

    /// `(time, fifo_core_count)` samples, one per migration (Fig. 19).
    pub fn fifo_size_history(&self) -> &[(SimTime, usize)] {
        &self.fifo_size_history
    }

    /// Executed core migrations with their Fig. 8 protocol steps.
    pub fn migrations(&self) -> &[MigrationReport] {
        &self.migrations
    }

    /// How many tasks exceeded the limit and moved to the CFS group.
    pub fn tasks_migrated(&self) -> u64 {
        self.tasks_migrated
    }

    /// How many background-hinted tasks bypassed the FIFO stage (§VII-4
    /// routing; always 0 unless [`HybridConfig::honor_hints`] is set).
    pub fn background_routed(&self) -> u64 {
        self.background_routed
    }

    /// Cores currently in the FIFO group.
    pub fn fifo_cores(&self) -> &[CoreId] {
        &self.fifo_cores
    }

    /// Cores currently in the CFS group.
    pub fn cfs_cores(&self) -> &[CoreId] {
        &self.cfs_cores
    }

    /// Group membership of a core.
    pub fn group_of(&self, core: CoreId) -> Group {
        self.group_of[core.index()]
    }

    /// Length of the global FIFO queue.
    pub fn fifo_queue_len(&self) -> usize {
        self.fifo_queue.len()
    }

    /// Total tasks queued across all CFS-side run queues.
    pub fn cfs_queue_len(&self) -> usize {
        self.cfs.total_queued()
    }

    // ---- internals -----------------------------------------------------

    /// Picks the CFS core the next incoming task lands on: round-robin per
    /// the paper (§IV-A) or least-loaded for the ablation.
    fn next_cfs_target(&mut self) -> CoreId {
        debug_assert!(!self.cfs_cores.is_empty(), "CFS group never empty");
        match self.cfg.cfs_placement {
            CfsPlacement::RoundRobin => {
                self.rr_next %= self.cfs_cores.len();
                let target = self.cfs_cores[self.rr_next];
                self.rr_next = (self.rr_next + 1) % self.cfs_cores.len();
                target
            }
            CfsPlacement::LeastLoaded => *self
                .cfs_cores
                .iter()
                .min_by_key(|c| self.cfs.queue_len(c.index()))
                .expect("cfs group non-empty"),
        }
    }

    /// Places a task that exceeded the limit onto the CFS side (§IV-A).
    fn migrate_task_to_cfs(&mut self, m: &Machine, task: TaskId) {
        let target = self.next_cfs_target();
        self.cfs.enqueue_new(m, target.index(), task);
        self.tasks_migrated += 1;
    }

    fn dispatch_fifo(&mut self, m: &mut Machine, core: CoreId) {
        while let Some(task) = self.fifo_queue.pop_front() {
            // Budget left before the task hits the limit. Normally the full
            // limit; less if host-OS interference interrupted a run.
            let observed = m.task(task).cpu_time();
            match self.limit.checked_sub(observed) {
                Some(budget) if !budget.is_zero() => {
                    m.dispatch(core, task, Some(budget))
                        .expect("dispatch on idle fifo core");
                    return;
                }
                _ => {
                    // Already over the (possibly shrunken) limit: straight
                    // to the long-task group.
                    self.migrate_task_to_cfs(m, task);
                }
            }
        }
    }

    fn dispatch_cfs(&mut self, m: &mut Machine, core: CoreId) {
        let idx = core.index();
        if self.cfs.queue_len(idx) == 0 && !self.cfs.steal_into(m, idx) {
            return;
        }
        if let Some((task, slice)) = self.cfs.pop(idx) {
            m.dispatch(core, task, Some(slice))
                .expect("dispatch on idle cfs core");
        }
    }

    fn update_limit(&mut self, now: SimTime) {
        if let TimeLimitPolicy::Adaptive { percentile, .. } = self.cfg.time_limit {
            if self.window.len() >= self.cfg.min_samples {
                let p = self
                    .window
                    .percentile(percentile)
                    .expect("non-empty window")
                    .max(self.cfg.min_limit);
                if p != self.limit {
                    self.limit = p;
                    self.limit_history.push((now, p));
                }
            }
        }
    }

    /// Executes one core migration following the Fig. 8 protocol.
    fn migrate_core(&mut self, m: &mut Machine, direction: MigrationDirection) {
        let now = m.now();
        let mut steps = Vec::with_capacity(5);
        match direction {
            MigrationDirection::CfsToFifo => {
                // Donate the CFS core with the shortest queue.
                let core = *self
                    .cfs_cores
                    .iter()
                    .min_by_key(|c| self.cfs.queue_len(c.index()))
                    .expect("cfs group non-empty");
                debug_assert!(
                    self.cfs.has_core(core.index()),
                    "donor must be a CFS member"
                );
                // Step 1: lock — atomic here, recorded for observability.
                steps.push(MigrationStep::Lock(core));
                // Step 2: preempt the occupying task, if any, into a
                // sibling's queue.
                let preempted = match m.core_state(core) {
                    CoreState::Running(_) => {
                        let t = m.preempt(core).expect("running core preempts");
                        Some(t)
                    }
                    _ => None,
                };
                steps.push(MigrationStep::PreemptRunning(preempted));
                // Step 3: redistribute the core's queue to remaining cores.
                self.cfs_cores.retain(|c| *c != core);
                let mut orphans = self.cfs.remove_core(core.index());
                if let Some(t) = preempted {
                    orphans.push(t);
                }
                let n = orphans.len();
                for (i, t) in orphans.into_iter().enumerate() {
                    let target = self.cfs_cores[i % self.cfs_cores.len()];
                    self.cfs.enqueue_new(m, target.index(), t);
                }
                steps.push(MigrationStep::RedistributeQueue(n));
                // Step 4: policy transition.
                self.group_of[core.index()] = Group::Fifo;
                self.fifo_cores.push(core);
                steps.push(MigrationStep::PolicyTransition(direction));
                // Step 5: unlock — the idle sweep will feed it FIFO work.
                steps.push(MigrationStep::Unlock(core));
                self.migrations.push(MigrationReport {
                    at: now,
                    core,
                    direction,
                    steps,
                });
            }
            MigrationDirection::FifoToCfs => {
                // Donate the most recently added FIFO core (LIFO keeps the
                // original short-task cores stable).
                let core = *self.fifo_cores.last().expect("fifo group non-empty");
                steps.push(MigrationStep::Lock(core));
                let preempted = match m.core_state(core) {
                    CoreState::Running(_) => {
                        let t = m.preempt(core).expect("running core preempts");
                        // Keeps its position: back to the queue head with
                        // its remaining limit budget.
                        self.fifo_queue.push_front(t);
                        Some(t)
                    }
                    _ => None,
                };
                steps.push(MigrationStep::PreemptRunning(preempted));
                self.fifo_cores.retain(|c| *c != core);
                self.group_of[core.index()] = Group::Cfs;
                self.cfs_cores.push(core);
                self.cfs.add_core(core.index());
                // §IV-B: the newcomer has an empty queue, so rebalance.
                let moved = self.cfs.balance(m);
                steps.push(MigrationStep::RedistributeQueue(moved));
                steps.push(MigrationStep::PolicyTransition(direction));
                steps.push(MigrationStep::Unlock(core));
                self.migrations.push(MigrationReport {
                    at: now,
                    core,
                    direction,
                    steps,
                });
            }
        }
        self.fifo_size_history.push((now, self.fifo_cores.len()));
        if let Some(c) = &mut self.controller {
            c.note_migration(now);
        }
    }

    fn group_utilization(&self, m: &Machine, cores: &[CoreId], window: SimDuration) -> f64 {
        if cores.is_empty() {
            return 0.0;
        }
        let now = m.now();
        cores
            .iter()
            .map(|c| m.utilization().windowed_utilization(c.index(), now, window))
            .sum::<f64>()
            / cores.len() as f64
    }
}

impl Scheduler for HybridScheduler {
    fn name(&self) -> &str {
        "hybrid-fifo+cfs"
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.cfg.tick)
    }

    fn on_task_new(&mut self, m: &mut Machine, task: TaskId) {
        if !self.validated {
            assert_eq!(
                m.num_cores(),
                self.cfg.total_cores(),
                "machine core count must match HybridConfig::total_cores()"
            );
            self.validated = true;
        }
        if self.cfg.honor_hints
            && m.task(task).spec().hint == faas_kernel::PlacementHint::Background
        {
            // §VII-4 extension: background threads (microVM VMM/I-O) skip
            // the latency-optimized FIFO stage entirely.
            let target = self.next_cfs_target();
            self.cfs.enqueue_new(m, target.index(), task);
            self.background_routed += 1;
            return;
        }
        // §IV-A: tasks are first directed to the global FIFO queue.
        self.fifo_queue.push_back(task);
    }

    fn on_slice_expired(&mut self, m: &mut Machine, task: TaskId, core: CoreId) {
        match self.group_of[core.index()] {
            // FIFO slice == remaining limit budget: the task is long.
            Group::Fifo => self.migrate_task_to_cfs(m, task),
            Group::Cfs => self.cfs.requeue(m, core.index(), task),
        }
    }

    fn on_interference_preempt(&mut self, m: &mut Machine, task: TaskId, core: CoreId) {
        match self.group_of[core.index()] {
            // The centralized agent re-queues the victim at the head so it
            // resumes as soon as a short-task core frees up.
            Group::Fifo => self.fifo_queue.push_front(task),
            Group::Cfs => self.cfs.requeue(m, core.index(), task),
        }
    }

    fn on_task_finished(&mut self, m: &mut Machine, task: TaskId, _core: CoreId) {
        // §IV-B: remember the last `window_size` task durations. We record
        // actual on-CPU time: it equals the wall-clock duration for
        // unpreempted FIFO tasks and is the schedule-independent measure of
        // how long the function itself is.
        self.window.push(m.task(task).cpu_time());
        self.update_limit(m.now());
    }

    fn on_core_idle(&mut self, m: &mut Machine, core: CoreId) {
        match self.group_of[core.index()] {
            Group::Fifo => self.dispatch_fifo(m, core),
            Group::Cfs => self.dispatch_cfs(m, core),
        }
    }

    fn on_tick(&mut self, m: &mut Machine) {
        let Some(controller) = &self.controller else {
            return;
        };
        let window = controller.window();
        let fifo_util = self.group_utilization(m, &self.fifo_cores, window);
        let cfs_util = self.group_utilization(m, &self.cfs_cores, window);
        let decision = controller.decide(
            m.now(),
            fifo_util,
            cfs_util,
            self.fifo_cores.len(),
            self.cfs_cores.len(),
        );
        if let Some(direction) = decision {
            self.migrate_core(m, direction);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CfsPlacement, RightsizingConfig};
    use faas_kernel::{CostModel, MachineConfig, SimReport, Simulation, TaskSpec};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn run(cfg: HybridConfig, specs: Vec<TaskSpec>) -> SimReport {
        let mcfg = MachineConfig::new(cfg.total_cores()).with_cost(CostModel::free());
        Simulation::new(mcfg, specs, HybridScheduler::new(cfg))
            .run()
            .unwrap()
    }

    fn mixed_specs(short: usize, long: usize) -> Vec<TaskSpec> {
        let mut v = Vec::new();
        for i in 0..long {
            v.push(TaskSpec::function(
                SimTime::from_millis(i as u64),
                ms(800),
                128,
            ));
        }
        for i in 0..short {
            v.push(TaskSpec::function(
                SimTime::from_millis(i as u64),
                ms(20),
                128,
            ));
        }
        v
    }

    #[test]
    fn short_tasks_never_preempted() {
        let cfg = HybridConfig::split(2, 2).with_time_limit(TimeLimitPolicy::Fixed(ms(100)));
        let report = run(cfg, mixed_specs(30, 2));
        for t in &report.tasks[2..] {
            assert_eq!(t.preemptions(), 0, "short task preempted");
            assert_eq!(t.execution_time().unwrap(), ms(20));
        }
    }

    #[test]
    fn long_tasks_migrate_exactly_once_off_fifo() {
        let cfg = HybridConfig::split(2, 2).with_time_limit(TimeLimitPolicy::Fixed(ms(100)));
        let mcfg = MachineConfig::new(4).with_cost(CostModel::free());
        let sim = Simulation::new(mcfg, mixed_specs(10, 3), HybridScheduler::new(cfg));
        let report = sim.run().unwrap();
        // Each 800 ms task consumed 100 ms on FIFO, then finished on CFS.
        for t in &report.tasks[..3] {
            assert!(t.preemptions() >= 1);
            assert!(t.completion().is_some());
        }
    }

    #[test]
    fn migrated_task_consumed_full_limit_on_fifo_side() {
        let cfg = HybridConfig::split(1, 1).with_time_limit(TimeLimitPolicy::Fixed(ms(100)));
        let specs = vec![TaskSpec::function(SimTime::ZERO, ms(500), 128)];
        let report = run(cfg, specs);
        let t = &report.tasks[0];
        assert_eq!(t.cpu_time(), ms(500), "free cost model: cpu time == work");
        assert!(t.preemptions() >= 1, "at least the migration preemption");
        // The FIFO core saw exactly one preemption: the limit migration.
        // The rest are warm CFS slice expiries on core 1.
        assert_eq!(report.core_stats[0].preemptions, 1);
        assert_eq!(
            report.core_stats[0].busy,
            ms(100),
            "FIFO side ran the task for the limit"
        );
    }

    #[test]
    fn adaptive_limit_tracks_percentile() {
        let cfg = HybridConfig::split(2, 2).with_time_limit(TimeLimitPolicy::Adaptive {
            percentile: 0.95,
            initial: ms(1_633),
        });
        let specs: Vec<TaskSpec> = (0..200)
            .map(|i| TaskSpec::function(SimTime::from_millis(i), ms(50 + (i % 20)), 128))
            .collect();
        let mcfg = MachineConfig::new(4).with_cost(CostModel::free());
        let mut sim = Simulation::new(mcfg, specs, HybridScheduler::new(cfg));
        while sim.step().unwrap() {}
        let policy = sim.policy();
        assert!(
            policy.limit() <= ms(70),
            "limit should have adapted down to the workload, got {}",
            policy.limit()
        );
        assert!(policy.limit_history().len() >= 2);
    }

    #[test]
    fn rightsizing_moves_cores_toward_load() {
        // All tasks are short: the CFS group sits idle and should donate
        // cores to the overloaded FIFO group.
        let cfg = HybridConfig::split(2, 4)
            .with_time_limit(TimeLimitPolicy::Fixed(ms(500)))
            .with_rightsizing(RightsizingConfig {
                window: SimDuration::from_millis(500),
                threshold: 0.3,
                cooldown: SimDuration::from_millis(200),
                min_cores: 1,
            });
        let specs: Vec<TaskSpec> = (0..400)
            .map(|i| TaskSpec::function(SimTime::from_millis(i / 4), ms(60), 128))
            .collect();
        let mcfg = MachineConfig::new(6).with_cost(CostModel::free());
        let mut sim = Simulation::new(mcfg, specs, HybridScheduler::new(cfg));
        while sim.step().unwrap() {}
        let policy = sim.policy();
        assert!(
            !policy.migrations().is_empty(),
            "overload imbalance should trigger at least one migration"
        );
        for report in policy.migrations() {
            assert!(
                report.follows_protocol(),
                "Fig. 8 ordering violated: {report:?}"
            );
            assert_eq!(report.direction, MigrationDirection::CfsToFifo);
        }
        assert!(policy.fifo_cores().len() > 2);
    }

    #[test]
    fn rightsizing_grows_cfs_side_under_long_load() {
        // All tasks are long: everything funnels through FIFO into CFS,
        // FIFO idles while CFS is overloaded.
        let cfg = HybridConfig::split(4, 2)
            .with_time_limit(TimeLimitPolicy::Fixed(ms(10)))
            .with_rightsizing(RightsizingConfig {
                window: SimDuration::from_millis(500),
                threshold: 0.3,
                cooldown: SimDuration::from_millis(200),
                min_cores: 1,
            });
        let specs: Vec<TaskSpec> = (0..60)
            .map(|i| TaskSpec::function(SimTime::from_millis(i * 5), ms(400), 128))
            .collect();
        let mcfg = MachineConfig::new(6).with_cost(CostModel::free());
        let mut sim = Simulation::new(mcfg, specs, HybridScheduler::new(cfg));
        while sim.step().unwrap() {}
        let policy = sim.policy();
        assert!(policy
            .migrations()
            .iter()
            .any(|r| r.direction == MigrationDirection::FifoToCfs));
        assert!(policy.cfs_cores().len() > 2);
    }

    #[test]
    fn background_hint_routes_straight_to_cfs_side() {
        use faas_kernel::PlacementHint;
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, ms(30), 128),
            TaskSpec::function(SimTime::ZERO, ms(30), 128).with_hint(PlacementHint::Background),
        ];
        let cfg = HybridConfig::split(1, 1)
            .with_time_limit(TimeLimitPolicy::Fixed(ms(1_000)))
            .with_hint_routing();
        let mcfg = MachineConfig::new(2).with_cost(CostModel::free());
        let mut sim = Simulation::new(mcfg, specs, HybridScheduler::new(cfg));
        while sim.step().unwrap() {}
        assert_eq!(sim.policy().background_routed(), 1);
        assert_eq!(
            sim.policy().tasks_migrated(),
            0,
            "hint routing is not a limit migration"
        );
        // The background task ran on the CFS core (core 1).
        let report_tasks = sim.machine().tasks();
        assert!(report_tasks.iter().all(|t| t.completion().is_some()));
    }

    #[test]
    fn hints_ignored_unless_enabled() {
        use faas_kernel::PlacementHint;
        let specs = vec![
            TaskSpec::function(SimTime::ZERO, ms(30), 128).with_hint(PlacementHint::Background)
        ];
        let cfg = HybridConfig::split(1, 1).with_time_limit(TimeLimitPolicy::Fixed(ms(1_000)));
        let mcfg = MachineConfig::new(2).with_cost(CostModel::free());
        let mut sim = Simulation::new(mcfg, specs, HybridScheduler::new(cfg));
        while sim.step().unwrap() {}
        assert_eq!(sim.policy().background_routed(), 0);
    }

    #[test]
    fn least_loaded_placement_balances_queues() {
        let cfg = HybridConfig::split(1, 2)
            .with_time_limit(TimeLimitPolicy::Fixed(ms(10)))
            .with_cfs_placement(CfsPlacement::LeastLoaded);
        let specs: Vec<TaskSpec> = (0..12)
            .map(|_| TaskSpec::function(SimTime::ZERO, ms(200), 128))
            .collect();
        let mcfg = MachineConfig::new(3).with_cost(CostModel::free());
        let report = Simulation::new(mcfg, specs, HybridScheduler::new(cfg))
            .run()
            .unwrap();
        assert!(report.tasks.iter().all(|t| t.completion().is_some()));
    }

    #[test]
    fn group_membership_is_partition() {
        let cfg = HybridConfig::split(3, 5);
        let sched = HybridScheduler::new(cfg);
        assert_eq!(sched.fifo_cores().len(), 3);
        assert_eq!(sched.cfs_cores().len(), 5);
        for i in 0..8 {
            let core = CoreId::from_index(i);
            let g = sched.group_of(core);
            let in_fifo = sched.fifo_cores().contains(&core);
            let in_cfs = sched.cfs_cores().contains(&core);
            assert!(in_fifo ^ in_cfs);
            assert_eq!(g == Group::Fifo, in_fifo);
        }
    }

    #[test]
    fn everything_completes_under_pressure() {
        let cfg = HybridConfig::split(2, 2).with_time_limit(TimeLimitPolicy::Fixed(ms(50)));
        let specs: Vec<TaskSpec> = (0..300)
            .map(|i| {
                let work = if i % 10 == 0 { ms(300) } else { ms(15) };
                TaskSpec::function(SimTime::from_millis(i as u64 * 2), work, 128)
            })
            .collect();
        let report = run(cfg, specs);
        assert_eq!(
            report
                .tasks
                .iter()
                .filter(|t| t.completion().is_some())
                .count(),
            300
        );
    }

    #[test]
    fn hybrid_beats_cfs_on_execution_time() {
        // The paper's core claim (Fig. 12): execution times collapse
        // because short tasks stop being time-sliced.
        use faas_policies::Cfs;
        let specs = || -> Vec<TaskSpec> {
            (0..200)
                .map(|i| {
                    let work = if i % 10 == 0 { ms(2_000) } else { ms(50) };
                    TaskSpec::function(SimTime::from_millis(i as u64), work, 128)
                })
                .collect()
        };
        let cost = CostModel::default();
        let hybrid_cfg = HybridConfig::split(2, 2).with_time_limit(TimeLimitPolicy::Fixed(ms(500)));
        let hybrid = Simulation::new(
            MachineConfig::new(4).with_cost(cost),
            specs(),
            HybridScheduler::new(hybrid_cfg),
        )
        .run()
        .unwrap();
        let cfs = Simulation::new(
            MachineConfig::new(4).with_cost(cost),
            specs(),
            Cfs::with_cores(4),
        )
        .run()
        .unwrap();
        let mean_exec = |r: &SimReport| {
            r.tasks
                .iter()
                .map(|t| t.execution_time().unwrap().as_micros())
                .sum::<u64>() as f64
                / r.tasks.len() as f64
        };
        assert!(
            mean_exec(&hybrid) * 2.0 < mean_exec(&cfs),
            "hybrid {} vs cfs {}",
            mean_exec(&hybrid),
            mean_exec(&cfs)
        );
    }
}
