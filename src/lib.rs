//! # serverless-hybrid-sched
//!
//! A from-scratch Rust reproduction of *“In Serverless, OS Scheduler
//! Choice Costs Money: A Hybrid Scheduling Approach for Cheaper FaaS”*
//! (Zhao, Weng, van Nieuwpoort, Uta — MIDDLEWARE 2024).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on one crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `faas-simcore` | virtual time, event queue, seeded RNG |
//! | [`kernel`] | `faas-kernel` | the simulated ghOSt-style OS substrate |
//! | [`policies`] | `faas-policies` | FIFO, CFS, RR, EDF, FIFO+limit, Shinjuku |
//! | [`hybrid`] | `hybrid-scheduler` | **the paper's hybrid FIFO+CFS scheduler** |
//! | [`trace`] | `azure-trace` | synthetic Azure-like workloads + calibration |
//! | [`metrics`] | `faas-metrics` | execution/response/turnaround, CDFs |
//! | [`pricing`] | `lambda-pricing` | AWS-Lambda-style cost model |
//! | [`firecracker`] | `microvm-sim` | microVM fleets with memory admission |
//! | [`cluster`] | `faas-cluster` | multi-machine fleets with front-end dispatch |
//! | [`host`] | `faas-host` | live-Linux backend (affinity + SCHED_FIFO) |
//!
//! ## Quickstart
//!
//! ```
//! use serverless_hybrid_sched::prelude::*;
//!
//! // Two minutes of Azure-like load (downscaled), on the paper's 25+25
//! // core split with the 1,633 ms FIFO limit.
//! let trace = AzureTrace::generate(&TraceConfig::w2().downscaled(50));
//! let cfg = HybridConfig::paper_25_25();
//! let report = Simulation::new(
//!     MachineConfig::new(cfg.total_cores()),
//!     trace.to_task_specs(),
//!     HybridScheduler::new(cfg),
//! )
//! .run()
//! .unwrap();
//! let records = records_from_tasks(&report.tasks);
//! let usd = PriceModel::duration_only().workload_cost(&records);
//! assert!(usd > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use azure_trace as trace;
pub use faas_cluster as cluster;
pub use faas_host as host;
pub use faas_kernel as kernel;
pub use faas_metrics as metrics;
pub use faas_policies as policies;
pub use faas_simcore as simcore;
pub use hybrid_scheduler as hybrid;
pub use lambda_pricing as pricing;
pub use microvm_sim as firecracker;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::hybrid::{HybridConfig, HybridScheduler, RightsizingConfig, TimeLimitPolicy};
    pub use crate::kernel::{
        CostModel, InterferenceConfig, Machine, MachineConfig, Scheduler, SimReport, Simulation,
        TaskSpec,
    };
    pub use crate::metrics::{records_from_tasks, DurationCdf, Metric, RunSummary, TaskRecord};
    pub use crate::policies::{Cfs, Edf, Fifo, FifoWithLimit, RoundRobin, Shinjuku};
    pub use crate::pricing::PriceModel;
    pub use crate::simcore::{SimDuration, SimTime};
    pub use crate::trace::{AzureTrace, TraceConfig};
}
